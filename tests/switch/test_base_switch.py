"""Unit tests for the conventional switch."""

import pytest

from repro.net import ChannelAdapter, Link, Packet
from repro.sim import Environment
from repro.sim.units import ns
from repro.switch import BaseSwitch, RoutingToSwitchError, SwitchConfig
from repro.net.packet import ActiveHeader


def build_fabric(env, switch_cls=BaseSwitch, num_endpoints=2, **kwargs):
    """A switch with ``num_endpoints`` adapters attached to ports 0..n."""
    switch = switch_cls(env, "sw0", **kwargs)
    adapters = []
    for i in range(num_endpoints):
        name = f"ep{i}"
        to_switch = Link(env, f"{name}->sw0")
        from_switch = Link(env, f"sw0->{name}")
        adapter = ChannelAdapter(env, name)
        adapter.attach(tx_link=to_switch, rx_link=from_switch)
        switch.connect(i, tx_link=from_switch, rx_link=to_switch)
        switch.routing.add(name, i)
        adapters.append(adapter)
    return switch, adapters


def test_forwards_between_endpoints():
    env = Environment()
    switch, (a, b) = build_fabric(env)

    from repro.net import Message

    def sender(env):
        yield from a.transmit(Message("ep0", "ep1", 256))

    def receiver(env):
        return (yield b.recv_queue.get())

    env.process(sender(env))
    proc = env.process(receiver(env))
    message = env.run(until=proc)
    assert message.size_bytes == 256
    assert switch.stats.forwarded == 1


def test_routing_latency_applied():
    env = Environment()
    switch, (a, b) = build_fabric(env)
    from repro.net import Message

    def sender(env):
        yield from a.transmit(Message("ep0", "ep1", 0))

    def receiver(env):
        yield b.recv_queue.get()
        return env.now

    env.process(sender(env))
    proc = env.process(receiver(env))
    arrival = env.run(until=proc)
    # Two link hops + the 100 ns routing latency must be present.
    assert arrival >= ns(100)


def test_multi_hop_through_two_switches():
    env = Environment()
    sw0 = BaseSwitch(env, "sw0")
    sw1 = BaseSwitch(env, "sw1")
    a = ChannelAdapter(env, "a")
    b = ChannelAdapter(env, "b")

    a_sw0 = Link(env, "a->sw0")
    sw0_a = Link(env, "sw0->a")
    sw0_sw1 = Link(env, "sw0->sw1")
    sw1_sw0 = Link(env, "sw1->sw0")
    sw1_b = Link(env, "sw1->b")
    b_sw1 = Link(env, "b->sw1")

    a.attach(tx_link=a_sw0, rx_link=sw0_a)
    sw0.connect(0, tx_link=sw0_a, rx_link=a_sw0)
    sw0.connect(1, tx_link=sw0_sw1, rx_link=sw1_sw0)
    sw1.connect(0, tx_link=sw1_sw0, rx_link=sw0_sw1)
    sw1.connect(1, tx_link=sw1_b, rx_link=b_sw1)
    b.attach(tx_link=b_sw1, rx_link=sw1_b)

    sw0.routing.add("b", 1)
    sw1.routing.add("b", 1)

    from repro.net import Message

    def sender(env):
        yield from a.transmit(Message("a", "b", 512))

    def receiver(env):
        return (yield b.recv_queue.get())

    env.process(sender(env))
    proc = env.process(receiver(env))
    message = env.run(until=proc)
    assert message.size_bytes == 512
    assert sw0.stats.forwarded == 1
    assert sw1.stats.forwarded == 1


def test_conventional_switch_rejects_active_packet():
    env = Environment()
    switch, (a, b) = build_fabric(env)

    def sender(env):
        packet = Packet("ep0", "sw0", payload_bytes=64,
                        active=ActiveHeader(handler_id=1, address=0))
        yield from a._tx_link.send(packet)

    env.process(sender(env))
    with pytest.raises(RoutingToSwitchError):
        env.run()


def test_port_bounds_checked():
    env = Environment()
    switch = BaseSwitch(env, "sw0")
    with pytest.raises(ValueError):
        switch.connect(99, Link(env, "x"), Link(env, "y"))


def test_double_connect_rejected():
    env = Environment()
    switch = BaseSwitch(env, "sw0")
    switch.connect(0, Link(env, "a"), Link(env, "b"))
    with pytest.raises(ValueError):
        switch.connect(0, Link(env, "c"), Link(env, "d"))


def test_config_validation():
    with pytest.raises(ValueError):
        SwitchConfig(num_ports=1)
    with pytest.raises(ValueError):
        SwitchConfig(routing_latency_ps=-1)
    with pytest.raises(ValueError):
        SwitchConfig(output_queue_packets=0)


def test_connected_ports_listing():
    env = Environment()
    switch = BaseSwitch(env, "sw0")
    switch.connect(2, Link(env, "a"), Link(env, "b"))
    assert switch.connected_ports() == [2]

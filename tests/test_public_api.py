"""The public API surface: everything advertised imports and works."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro.sim",
    "repro.mem",
    "repro.cpu",
    "repro.net",
    "repro.switch",
    "repro.io",
    "repro.cluster",
    "repro.apps",
    "repro.workloads",
    "repro.metrics",
    "repro.experiments",
    "repro.faults",
    "repro.runner",
    "repro.obs",
]


def test_version():
    assert repro.__version__ == "1.7.0"


@pytest.mark.parametrize("package", PACKAGES)
def test_subpackage_imports(package):
    module = importlib.import_module(package)
    assert module is not None


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.{name} missing"


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name)


def test_every_module_has_a_docstring():
    import pathlib
    root = pathlib.Path(repro.__file__).parent
    for path in sorted(root.rglob("*.py")):
        source = path.read_text()
        if not source.strip():
            continue
        first = source.lstrip()
        assert first.startswith('"""') or first.startswith("'''"), (
            f"{path} lacks a module docstring")


def test_public_classes_have_docstrings():
    from repro.cluster import ClusterConfig, ReadStream, System
    from repro.switch import ActiveSwitch, HandlerContext
    for cls in (ClusterConfig, ReadStream, System, ActiveSwitch,
                HandlerContext):
        assert cls.__doc__


def test_quickstart_snippet_from_readme():
    """The README's Python snippet must actually run."""
    result = repro.run("grep", scale=0.1)
    report = result.report()
    assert "grep" in report.performance()
    assert "n-HP" in report.breakdown()
    assert result.active_speedup > 0


def test_four_cases_shim_warns_and_forwards():
    from repro.cluster import ClusterConfig, case_configs, four_cases

    base = ClusterConfig()
    with pytest.warns(DeprecationWarning, match="four_cases"):
        legacy = four_cases(base)
    assert legacy == case_configs(base)


def test_run_four_cases_shim_warns_and_forwards():
    from repro.apps import GrepApp, run_four_cases

    with pytest.warns(DeprecationWarning, match="run_four_cases"):
        legacy = run_four_cases(lambda: GrepApp(scale=0.05))
    direct = repro.run(lambda: GrepApp(scale=0.05))
    assert legacy.name == "grep"
    assert set(legacy.cases) == set(direct.cases)
    for label, case in direct.cases.items():
        assert legacy.case(label) == case


def test_runner_exports_are_authoritative():
    for name in ("run", "run_many", "configure", "paper_grid", "make_spec",
                 "AppSpec", "ExperimentRunner", "ResultCache", "RunResult",
                 "Tracer", "Report"):
        assert name in repro.__all__, name
        assert hasattr(repro, name)

"""The public API surface: everything advertised imports and works."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro.sim",
    "repro.mem",
    "repro.cpu",
    "repro.net",
    "repro.switch",
    "repro.io",
    "repro.cluster",
    "repro.apps",
    "repro.workloads",
    "repro.metrics",
    "repro.experiments",
]


def test_version():
    assert repro.__version__ == "1.0.0"


@pytest.mark.parametrize("package", PACKAGES)
def test_subpackage_imports(package):
    module = importlib.import_module(package)
    assert module is not None


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.{name} missing"


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name)


def test_every_module_has_a_docstring():
    import pathlib
    root = pathlib.Path(repro.__file__).parent
    for path in sorted(root.rglob("*.py")):
        source = path.read_text()
        if not source.strip():
            continue
        first = source.lstrip()
        assert first.startswith('"""') or first.startswith("'''"), (
            f"{path} lacks a module docstring")


def test_public_classes_have_docstrings():
    from repro.cluster import ClusterConfig, ReadStream, System
    from repro.switch import ActiveSwitch, HandlerContext
    for cls in (ClusterConfig, ReadStream, System, ActiveSwitch,
                HandlerContext):
        assert cls.__doc__


def test_quickstart_snippet_from_readme():
    """The README's Python snippet must actually run."""
    from repro.apps import GrepApp, run_four_cases
    from repro.metrics import breakdown_table, performance_table

    result = run_four_cases(lambda: GrepApp(scale=0.1))
    assert "grep" in performance_table(result)
    assert "n-HP" in breakdown_table(result)
    assert result.active_speedup > 0

"""Unit tests for links and credit-based flow control."""

import pytest

from repro.net import Link, LinkConfig, Packet
from repro.sim import Environment
from repro.sim.units import ns


def test_send_receive_roundtrip():
    env = Environment()
    link = Link(env, "l")

    def sender(env):
        yield from link.send(Packet("a", "b", payload_bytes=512))

    def receiver(env):
        packet = yield from link.receive()
        return (env.now, packet.payload_bytes)

    env.process(sender(env))
    proc = env.process(receiver(env))
    now, size = env.run(until=proc)
    assert size == 512
    # 528 wire bytes at 1 GB/s = 528 ns, plus 20 ns propagation.
    assert now == link.serialization_ps(528) + ns(20)


def test_serialization_time_at_1gbps():
    env = Environment()
    link = Link(env, "l")
    assert link.serialization_ps(1000) == ns(1000)


def test_occupancy_includes_per_packet_headers():
    env = Environment()
    link = Link(env, "l")
    # 1024 B payload = 2 packets = 32 B of headers.
    assert link.occupancy_ps(1024) == link.serialization_ps(1056)


def test_occupancy_zero():
    env = Environment()
    assert Link(env, "l").occupancy_ps(0) == 0


def test_occupancy_single_packet_adds_one_header():
    env = Environment()
    link = Link(env, "l")
    # Anything up to one MTU is one packet -> exactly one header.
    assert link.occupancy_ps(1) == link.serialization_ps(1 + 16)
    assert link.occupancy_ps(512) == link.serialization_ps(512 + 16)


def test_occupancy_header_count_at_mtu_boundaries():
    env = Environment()
    link = Link(env, "l")
    # 513 B spills into a second packet -> two headers.
    assert link.occupancy_ps(513) == link.serialization_ps(513 + 32)
    # Exact multiples need exactly size/MTU headers, no phantom packet.
    assert link.occupancy_ps(1024) == link.serialization_ps(1024 + 32)
    assert link.occupancy_ps(512 * 100) == link.serialization_ps(
        512 * 100 + 100 * 16)


def test_occupancy_honors_custom_mtu_and_header():
    env = Environment()
    link = Link(env, "l")
    assert link.occupancy_ps(1000, mtu=100, header_bytes=8) == \
        link.serialization_ps(1000 + 10 * 8)


def test_packets_serialize_back_to_back():
    env = Environment()
    link = Link(env, "l")
    arrivals = []

    def sender(env):
        for _ in range(3):
            yield from link.send(Packet("a", "b", payload_bytes=512))

    def receiver(env):
        for _ in range(3):
            yield from link.receive()
            arrivals.append(env.now)

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    assert all(gap == link.serialization_ps(528) for gap in gaps)


def test_credits_block_sender_until_receiver_drains():
    env = Environment()
    link = Link(env, "l", LinkConfig(credits=2))
    send_times = []

    def sender(env):
        for _ in range(3):
            yield from link.send(Packet("a", "b", payload_bytes=512))
            send_times.append(env.now)

    def lazy_receiver(env):
        yield env.timeout(ns(10_000))
        for _ in range(3):
            yield from link.receive()

    env.process(sender(env))
    env.process(lazy_receiver(env))
    env.run()
    # The third send cannot complete until the receiver returns a credit.
    assert send_times[2] >= ns(10_000)


def test_link_stats_accumulate():
    env = Environment()
    link = Link(env, "l")

    def sender(env):
        yield from link.send(Packet("a", "b", payload_bytes=100))

    def receiver(env):
        yield from link.receive()

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    assert link.stats.packets == 1
    assert link.stats.bytes == 116


def test_notify_event_fires_on_delivery():
    env = Environment()
    link = Link(env, "l")
    packet = Packet("a", "b", payload_bytes=64)
    packet.notify = env.event()

    def sender(env):
        yield from link.send(packet)

    def receiver(env):
        yield from link.receive()

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    assert packet.notify.triggered


def test_config_validation():
    with pytest.raises(ValueError):
        LinkConfig(bandwidth_bytes_per_s=0)
    with pytest.raises(ValueError):
        LinkConfig(propagation_ps=-1)
    with pytest.raises(ValueError):
        LinkConfig(credits=0)


def test_link_utilization_measured():
    env = Environment()
    link = Link(env, "l")

    def sender(env):
        yield from link.send(Packet("a", "b", payload_bytes=512))
        yield env.timeout(ns(528))  # idle for exactly one packet time

    def receiver(env):
        yield from link.receive()

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    # Busy for 528 ns of ~1076 ns total -> ~49-50%.
    assert 0.45 < link.utilization() < 0.55


def test_idle_link_utilization_zero():
    env = Environment()
    link = Link(env, "l")
    env.timeout(1000)
    env.run()
    assert link.utilization() == 0.0

"""Contention integration tests: shared links, queues, and fan-in."""

import pytest

from repro.net import ChannelAdapter, Link, LinkConfig, Message
from repro.sim import Environment
from repro.sim.units import ns, us
from repro.switch import BaseSwitch, SwitchConfig


def star(env, num_endpoints, switch_config=SwitchConfig(),
         link_config=LinkConfig()):
    switch = BaseSwitch(env, "sw0", switch_config)
    adapters = []
    for i in range(num_endpoints):
        name = f"ep{i}"
        to_switch = Link(env, f"{name}->sw0", link_config)
        from_switch = Link(env, f"sw0->{name}", link_config)
        adapter = ChannelAdapter(env, name)
        adapter.attach(tx_link=to_switch, rx_link=from_switch)
        switch.connect(i, tx_link=from_switch, rx_link=to_switch)
        switch.routing.add(name, i)
        adapters.append(adapter)
    return switch, adapters


def test_fan_in_serializes_on_destination_link():
    """Three senders to one receiver share its downlink: aggregate time
    is at least the sum of the serialization times."""
    env = Environment()
    switch, adapters = star(env, 4)
    receiver = adapters[3]
    payload = 16 * 512  # 16 packets each

    def sender(env, adapter):
        yield from adapter.transmit(Message(adapter.node_id, "ep3", payload))

    for adapter in adapters[:3]:
        env.process(sender(env, adapter))

    def consume(env):
        for _ in range(3):
            yield receiver.recv_queue.get()
        return env.now

    proc = env.process(consume(env))
    elapsed = env.run(until=proc)
    wire_one = 3 * 16 * (512 + 16)  # bytes for all three messages
    min_time = wire_one * 1000 // 1_000_000_000 * 1_000_000  # ns -> ps
    assert elapsed >= min_time


def test_distinct_destinations_proceed_in_parallel():
    """Traffic to different output ports does not serialize."""
    env = Environment()
    switch, adapters = star(env, 4)
    payload = 32 * 512

    def exchange(env, src, dst):
        yield from src.transmit(Message(src.node_id, dst.node_id, payload))

    def consume(env, adapter):
        yield adapter.recv_queue.get()
        return env.now

    env.process(exchange(env, adapters[0], adapters[2]))
    env.process(exchange(env, adapters[1], adapters[3]))
    done2 = env.process(consume(env, adapters[2]))
    done3 = env.process(consume(env, adapters[3]))
    gate = env.all_of([done2, done3])
    env.run(until=gate)
    t2, t3 = done2.value, done3.value
    # Parallel flows finish within one packet time of each other.
    assert abs(t2 - t3) < us(1)


def test_output_queue_capacity_backpressures_input():
    """A tiny output queue plus a receiver that drains its link slowly
    stalls the sender via credit exhaustion rather than dropping."""
    env = Environment()
    switch = BaseSwitch(env, "sw0",
                        SwitchConfig(output_queue_packets=2))
    link_config = LinkConfig(credits=2)
    # Sender endpoint with a normal adapter.
    to_switch = Link(env, "ep0->sw0", link_config)
    from_switch0 = Link(env, "sw0->ep0", link_config)
    sender_adapter = ChannelAdapter(env, "ep0")
    sender_adapter.attach(tx_link=to_switch, rx_link=from_switch0)
    switch.connect(0, tx_link=from_switch0, rx_link=to_switch)
    switch.routing.add("ep0", 0)
    # Receiver endpoint consumed manually at the LINK level (a slow NIC).
    to_switch1 = Link(env, "ep1->sw0", link_config)
    from_switch1 = Link(env, "sw0->ep1", link_config)
    switch.connect(1, tx_link=from_switch1, rx_link=to_switch1)
    switch.routing.add("ep1", 1)

    sent = []

    def sender(env):
        for i in range(12):
            yield from sender_adapter.transmit(Message("ep0", "ep1", 512))
            sent.append(env.now)

    def slow_nic(env):
        for _ in range(12):
            yield env.timeout(us(50))
            yield from from_switch1.receive()

    env.process(sender(env))
    env.process(slow_nic(env))
    env.run()
    # In-flight capacity = sender credits (2) + output queue (2) +
    # receiver credits (2) + in-route slack; every send beyond that is
    # paced at the NIC's 50 us drain rate instead of wire speed
    # (12 x 528 ns ~ 6 us unthrottled).
    assert sent[-1] > us(150)
    # The first handful fit the pipe and go at wire speed.
    assert sent[0] < us(5)


def test_no_packet_loss_under_pressure():
    env = Environment()
    switch, adapters = star(
        env, 2,
        switch_config=SwitchConfig(output_queue_packets=2),
        link_config=LinkConfig(credits=2))
    received = []

    def sender(env):
        for i in range(40):
            yield from adapters[0].transmit(Message("ep0", "ep1", 256,
                                                    payload=i))

    def receiver(env):
        for _ in range(40):
            message = yield adapters[1].recv_queue.get()
            received.append(message.payload)

    env.process(sender(env))
    proc = env.process(receiver(env))
    env.run(until=proc)
    assert received == list(range(40))


def test_switch_forward_counts_match_traffic():
    env = Environment()
    switch, adapters = star(env, 3)

    def sender(env, src, dst, count):
        for _ in range(count):
            yield from src.transmit(Message(src.node_id, dst, 100))

    env.process(sender(env, adapters[0], "ep1", 3))
    env.process(sender(env, adapters[2], "ep1", 2))
    env.run()
    assert switch.stats.forwarded == 5
    assert adapters[1].traffic.messages_in == 5

"""Unit tests for packet/message formats."""

import pytest

from repro.net import (
    HEADER_BYTES,
    MTU,
    ActiveHeader,
    Message,
    Packet,
)


def test_mtu_is_512():
    assert MTU == 512


def test_header_is_128_bits():
    assert HEADER_BYTES == 16


def test_active_header_field_widths():
    ActiveHeader(handler_id=63, address=(1 << 32) - 1)  # max values fit
    with pytest.raises(ValueError):
        ActiveHeader(handler_id=64, address=0)
    with pytest.raises(ValueError):
        ActiveHeader(handler_id=0, address=1 << 32)
    with pytest.raises(ValueError):
        ActiveHeader(handler_id=0, address=0, cpu_id=4)


def test_packet_wire_bytes_includes_header():
    packet = Packet(src="a", dst="b", payload_bytes=100)
    assert packet.wire_bytes == 116


def test_packet_rejects_oversize_payload():
    with pytest.raises(ValueError):
        Packet(src="a", dst="b", payload_bytes=MTU + 1)


def test_packet_rejects_negative_payload():
    with pytest.raises(ValueError):
        Packet(src="a", dst="b", payload_bytes=-1)


def test_packet_is_active_only_with_header():
    plain = Packet(src="a", dst="b", payload_bytes=10)
    active = Packet(src="a", dst="b", payload_bytes=10,
                    active=ActiveHeader(handler_id=1, address=0))
    assert not plain.is_active
    assert active.is_active


def test_message_packet_count():
    assert Message("a", "b", size_bytes=0).num_packets == 1
    assert Message("a", "b", size_bytes=1).num_packets == 1
    assert Message("a", "b", size_bytes=512).num_packets == 1
    assert Message("a", "b", size_bytes=513).num_packets == 2
    assert Message("a", "b", size_bytes=64 * 1024).num_packets == 128


def test_message_wire_bytes():
    message = Message("a", "b", size_bytes=1024)
    assert message.wire_bytes == 1024 + 2 * HEADER_BYTES


def test_packetize_sizes_and_sequence():
    message = Message("a", "b", size_bytes=1100)
    packets = message.packetize()
    assert [p.payload_bytes for p in packets] == [512, 512, 76]
    assert [p.seq for p in packets] == [0, 1, 2]
    assert [p.last for p in packets] == [False, False, True]
    assert len({p.message_id for p in packets}) == 1


def test_packetize_carries_payload_on_first_packet_only():
    message = Message("a", "b", size_bytes=1024, payload={"k": 1})
    packets = message.packetize()
    assert packets[0].payload == {"k": 1}
    assert packets[1].payload is None


def test_packetize_propagates_active_header():
    header = ActiveHeader(handler_id=5, address=0x1000)
    packets = Message("a", "b", size_bytes=1024, active=header).packetize()
    assert all(p.active == header for p in packets)


def test_packetize_zero_size_message():
    """A zero-byte message still needs one packet to carry its header
    (and any functional payload riding on it)."""
    message = Message("a", "b", size_bytes=0, payload={"token": 9})
    packets = message.packetize()
    assert len(packets) == 1
    assert packets[0].payload_bytes == 0
    assert packets[0].seq == 0
    assert packets[0].last
    assert packets[0].payload == {"token": 9}


def test_packetize_exact_mtu_multiples():
    """No phantom trailing packet when the size divides evenly."""
    for multiple in (1, 2, 8):
        message = Message("a", "b", size_bytes=multiple * MTU)
        packets = message.packetize()
        assert len(packets) == multiple
        assert all(p.payload_bytes == MTU for p in packets)
        assert [p.last for p in packets] == [False] * (multiple - 1) + [True]


def test_packetize_payload_only_on_seq_zero_for_long_messages():
    message = Message("a", "b", size_bytes=3 * MTU + 1, payload=[1, 2, 3])
    packets = message.packetize()
    assert len(packets) == 4
    assert packets[0].payload == [1, 2, 3]
    assert all(p.payload is None for p in packets[1:])
    assert all(p.message_bytes == 3 * MTU + 1 for p in packets)


def test_distinct_messages_get_distinct_ids():
    a = Message("a", "b", size_bytes=10).packetize()
    b = Message("a", "b", size_bytes=10).packetize()
    assert a[0].message_id != b[0].message_id


def test_message_rejects_negative_size():
    with pytest.raises(ValueError):
        Message("a", "b", size_bytes=-5)

"""Unit tests for routing tables."""

import pytest

from repro.net import RoutingError, RoutingTable


def test_lookup_known_destination():
    table = RoutingTable("sw0")
    table.add("host0", 3)
    assert table.lookup("host0") == 3


def test_lookup_unknown_raises():
    table = RoutingTable("sw0")
    with pytest.raises(RoutingError):
        table.lookup("nowhere")


def test_default_port_fallback():
    table = RoutingTable("sw0")
    table.set_default(7)
    assert table.lookup("anything") == 7


def test_explicit_route_beats_default():
    table = RoutingTable("sw0")
    table.set_default(7)
    table.add("host0", 1)
    assert table.lookup("host0") == 1


def test_add_many():
    table = RoutingTable("sw0")
    table.add_many(["a", "b", "c"], 5)
    assert table.lookup("b") == 5
    assert len(table) == 3


def test_contains_is_explicit_routes_only():
    """Regression: a default port must not make every destination
    "contained" — multi-switch fabrics ask ``in`` to mean "is this host
    actually routed *here*"."""
    table = RoutingTable("sw0")
    table.add("x", 0)
    assert "x" in table
    assert "y" not in table
    table.set_default(1)
    assert "y" not in table          # default port is not containment
    assert table.lookup("y") == 1    # ...but lookup still falls back


def test_has_route_semantics():
    table = RoutingTable("sw0")
    table.add("x", 0)
    assert table.has_route("x")
    assert not table.has_route("y")
    assert not table.has_route("y", include_default=True)
    table.set_default(3)
    assert not table.has_route("y")
    assert table.has_route("y", include_default=True)
    table.add_group("z", [1, 2])
    assert table.has_route("z")
    assert "z" in table


def test_negative_port_rejected():
    table = RoutingTable("sw0")
    with pytest.raises(ValueError):
        table.add("x", -1)
    with pytest.raises(ValueError):
        table.set_default(-2)
    with pytest.raises(ValueError):
        table.add_group("x", [0, -1])


def test_ecmp_group_lookup_is_deterministic_and_spreads():
    table = RoutingTable("sw0")
    table.add_group("far", [2, 3, 4])
    chosen = {table.lookup("far", flow_key=(f"host{i}", "far"))
              for i in range(64)}
    assert chosen == {2, 3, 4}  # 64 flows cover a 3-way group
    # Same flow key -> same port, every time (bit-reproducibility).
    for i in range(8):
        key = (f"host{i}", "far")
        assert table.lookup("far", flow_key=key) == \
            table.lookup("far", flow_key=key)
    assert table.ports_for("far") == (2, 3, 4)


def test_ecmp_group_edge_cases():
    table = RoutingTable("sw0")
    with pytest.raises(ValueError):
        table.add_group("far", [])
    table.add_group("far", [5])      # single member collapses to a route
    assert table.lookup("far") == 5
    assert table.ports_for("far") == (5,)
    table.add_group("far", [1, 2])   # re-registering replaces the route
    assert table.ports_for("far") == (1, 2)
    table.add("far", 7)              # explicit route replaces the group
    assert table.ports_for("far") == (7,)
    assert len(table) == 1


def test_ports_for_falls_back_to_default():
    table = RoutingTable("sw0")
    assert table.ports_for("ghost") == ()
    table.set_default(9)
    assert table.ports_for("ghost") == (9,)
    assert table.default_port == 9


# ----------------------------------------------------------------------
# Failover: mark_down / restore
# ----------------------------------------------------------------------
def test_mark_down_rehashes_ecmp_onto_survivors():
    table = RoutingTable("sw0")
    table.add_group("far", [2, 3, 4])
    assert table.mark_down(3)
    chosen = {table.lookup("far", flow_key=(f"host{i}", "far"))
              for i in range(64)}
    assert chosen == {2, 4}
    assert table.ports_for("far") == (2, 4)
    assert table.down_ports == (3,)
    # Flows stay pinned among survivors (deterministic re-hash).
    key = ("host0", "far")
    assert table.lookup("far", flow_key=key) == \
        table.lookup("far", flow_key=key)


def test_mark_down_is_idempotent_and_restore_reverses_it():
    table = RoutingTable("sw0")
    table.add_group("far", [2, 3])
    assert table.mark_down(3)
    assert not table.mark_down(3)        # already down
    assert table.restore(3)
    assert not table.restore(3)          # already up
    assert table.down_ports == ()
    chosen = {table.lookup("far", flow_key=(f"h{i}", "far"))
              for i in range(64)}
    assert chosen == {2, 3}


def test_restore_reproduces_pre_failure_hashing():
    """After restore the live view re-aliases the full groups: every
    flow maps exactly where it did before the outage."""
    table = RoutingTable("sw0")
    table.add_group("far", [1, 2, 3, 4])
    before = {i: table.lookup("far", flow_key=(f"h{i}", "far"))
              for i in range(32)}
    table.mark_down(2)
    table.restore(2)
    after = {i: table.lookup("far", flow_key=(f"h{i}", "far"))
             for i in range(32)}
    assert before == after
    assert table._live_groups is table._groups  # O(1) alias, not a copy


def test_all_ecmp_members_down_raises():
    table = RoutingTable("sw0")
    table.add_group("far", [1, 2])
    table.mark_down(1)
    table.mark_down(2)
    with pytest.raises(RoutingError, match="every ECMP port"):
        table.lookup("far")
    assert table.ports_for("far") == ()   # how validation sees a partition


def test_plain_route_to_down_port_raises():
    table = RoutingTable("sw0")
    table.add("host3", 5)
    table.mark_down(5)
    with pytest.raises(RoutingError, match="down port 5"):
        table.lookup("host3")
    assert table.ports_for("host3") == ()


def test_down_default_port_raises():
    table = RoutingTable("sw0")
    table.set_default(7)
    table.mark_down(7)
    with pytest.raises(RoutingError, match="default port 7"):
        table.lookup("anything")
    assert table.ports_for("anything") == ()


def test_adding_routes_during_outage_respects_down_set():
    table = RoutingTable("sw0")
    table.mark_down(2)
    table.add_group("far", [1, 2, 3])
    assert table.ports_for("far") == (1, 3)
    table.restore(2)
    assert table.ports_for("far") == (1, 2, 3)

"""Unit tests for routing tables."""

import pytest

from repro.net import RoutingError, RoutingTable


def test_lookup_known_destination():
    table = RoutingTable("sw0")
    table.add("host0", 3)
    assert table.lookup("host0") == 3


def test_lookup_unknown_raises():
    table = RoutingTable("sw0")
    with pytest.raises(RoutingError):
        table.lookup("nowhere")


def test_default_port_fallback():
    table = RoutingTable("sw0")
    table.set_default(7)
    assert table.lookup("anything") == 7


def test_explicit_route_beats_default():
    table = RoutingTable("sw0")
    table.set_default(7)
    table.add("host0", 1)
    assert table.lookup("host0") == 1


def test_add_many():
    table = RoutingTable("sw0")
    table.add_many(["a", "b", "c"], 5)
    assert table.lookup("b") == 5
    assert len(table) == 3


def test_contains():
    table = RoutingTable("sw0")
    table.add("x", 0)
    assert "x" in table
    assert "y" not in table
    table.set_default(1)
    assert "y" in table


def test_negative_port_rejected():
    table = RoutingTable("sw0")
    with pytest.raises(ValueError):
        table.add("x", -1)
    with pytest.raises(ValueError):
        table.set_default(-2)

"""Link-layer recovery: drops, CRC NACKs, retries, credit conservation."""

import pytest

from repro.faults import FaultInjector, FaultPlan, LinkFaults
from repro.net import (
    ChannelAdapter,
    AdapterSendError,
    Link,
    LinkConfig,
    LinkTransmissionError,
    Packet,
)
from repro.sim import Environment
from repro.sim.units import us


def _faulty_link(env, link_faults, seed=0, config=LinkConfig()):
    link = Link(env, "l", config)
    link.attach_faults(FaultInjector(FaultPlan(link=link_faults), seed=seed))
    return link


def _run_roundtrip(link, env, npackets=1, payload_bytes=256):
    received = []

    def sender(env):
        for _ in range(npackets):
            yield from link.send(Packet("a", "b",
                                        payload_bytes=payload_bytes))

    def receiver(env):
        for _ in range(npackets):
            packet = yield from link.receive()
            received.append(packet)

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    return received


# ----------------------------------------------------------------------
# Drops: ACK timeout + retransmission; the credit comes back (satellite:
# the pre-reliability code leaked the credit of a lost packet).
# ----------------------------------------------------------------------
def test_dropped_packet_is_retransmitted_and_delivered():
    env = Environment()
    link = _faulty_link(env, LinkFaults(drop_attempts=(0,)))
    received = _run_roundtrip(link, env)
    assert len(received) == 1
    assert not received[0].corrupted
    assert link.stats.packets_sent == 2
    assert link.stats.packets_dropped == 1
    assert link.stats.retransmits == 1
    assert link.stats.packets_delivered == 1


def test_drop_returns_credit_immediately():
    """A dropped packet's credit must not leak: with 1 credit, a drop
    followed by a successful retransmission still completes."""
    env = Environment()
    link = _faulty_link(env, LinkFaults(drop_attempts=(0, 2)),
                        config=LinkConfig(credits=1))
    received = _run_roundtrip(link, env, npackets=2)
    assert len(received) == 2
    link.assert_credit_conservation()
    assert link._credits.level == 1


def test_drop_waits_ack_timeout_with_backoff():
    env = Environment()
    faults = LinkFaults(drop_attempts=(0, 1), ack_timeout_ps=us(5),
                        backoff_factor=2.0)
    link = _faulty_link(env, faults)
    arrival = {}

    def sender(env):
        yield from link.send(Packet("a", "b", payload_bytes=256))

    def receiver(env):
        yield from link.receive()
        arrival["t"] = env.now

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    serialization = link.serialization_ps(256 + 16)
    expected = (3 * serialization            # two lost copies + the good one
                + us(5) + us(10)             # backed-off ACK timeouts
                + link.config.propagation_ps)
    assert arrival["t"] == expected


# ----------------------------------------------------------------------
# Corruption: CRC discard at the receiving port + NACK retransmission
# ----------------------------------------------------------------------
def test_corrupted_packet_is_nacked_and_retransmitted():
    env = Environment()
    link = _faulty_link(env, LinkFaults(corrupt_attempts=(0,)))
    received = _run_roundtrip(link, env)
    assert len(received) == 1
    assert not received[0].corrupted
    assert link.stats.packets_corrupted == 1
    assert link.stats.retransmits == 1
    assert link.stats.packets_sent == 2
    link.assert_credit_conservation()
    assert link._credits.level == link.config.credits


def test_receiver_never_sees_corrupted_copies():
    env = Environment()
    link = _faulty_link(env, LinkFaults(corrupt_attempts=(0, 1, 2)))
    received = _run_roundtrip(link, env, npackets=2)
    assert [p.corrupted for p in received] == [False, False]
    assert link.stats.packets_corrupted == 3


def test_notify_fires_exactly_once_despite_retransmissions():
    """The compose-buffer recycle event must fire only for the copy that
    made it — and only once (satellite: Packet.notify semantics)."""
    env = Environment()
    link = _faulty_link(env, LinkFaults(drop_attempts=(0,),
                                        corrupt_attempts=(1,)))
    packet = Packet("a", "b", payload_bytes=64)
    packet.notify = env.event()
    fired = []
    packet.notify.callbacks.append(lambda e: fired.append(env.now))

    def sender(env):
        yield from link.send(packet)

    def receiver(env):
        yield from link.receive()

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    assert len(fired) == 1
    # Attempts 0 (drop) and 1 (corrupt) must not have recycled it.
    assert link.stats.retransmits == 2


# ----------------------------------------------------------------------
# Exhaustion
# ----------------------------------------------------------------------
def test_retry_exhaustion_raises_and_restores_credit():
    env = Environment()
    link = _faulty_link(
        env, LinkFaults(drop_attempts=tuple(range(10)), max_retries=2))
    failures = []

    def sender(env):
        try:
            yield from link.send(Packet("a", "b", payload_bytes=64))
        except LinkTransmissionError as exc:
            failures.append(exc)

    env.process(sender(env))
    env.run()
    assert len(failures) == 1
    link.assert_credit_conservation()
    assert link._credits.level == link.config.credits
    assert link.stats.packets_delivered == 0


def test_adapter_wraps_exhaustion_as_send_error():
    env = Environment()
    tx = _faulty_link(
        env, LinkFaults(drop_attempts=tuple(range(10)), max_retries=1))
    rx = Link(env, "rx")
    adapter = ChannelAdapter(env, "node")
    adapter.attach(tx_link=tx, rx_link=rx)
    failures = []

    def sender(env):
        from repro.net import Message
        try:
            yield from adapter.transmit(Message("node", "peer", size_bytes=64))
        except AdapterSendError as exc:
            failures.append(exc)

    env.process(sender(env))
    env.run()
    assert len(failures) == 1
    assert adapter.traffic.send_failures == 1
    assert adapter.reliability()["send_failures"] == 1
    assert adapter.reliability()["tx_dropped"] == 2


# ----------------------------------------------------------------------
# Conservation checker
# ----------------------------------------------------------------------
def test_credit_conservation_checker_detects_a_leak():
    env = Environment()
    link = Link(env, "l")
    link.assert_credit_conservation()  # clean link passes
    link._credits_outstanding += 1      # simulate a leaked credit
    with pytest.raises(AssertionError, match="credit conservation"):
        link.assert_credit_conservation()


def test_fault_free_link_keeps_conservation_under_load():
    env = Environment()
    link = Link(env, "l", LinkConfig(credits=2))
    _run_roundtrip(link, env, npackets=5)
    link.assert_credit_conservation()
    assert link._credits.level == 2
    assert link.stats.packets_sent == link.stats.packets_delivered == 5

"""Unit tests for the channel adapter / HCA."""

from repro.cpu import HostCPU
from repro.mem import build_host_hierarchy
from repro.net import HCA, ChannelAdapter, HcaConfig, Link
from repro.sim import Clock, Environment


def wire_pair(env, a, b):
    """Connect two adapters with a duplex pair of links."""
    ab = Link(env, "a->b")
    ba = Link(env, "b->a")
    a.attach(tx_link=ab, rx_link=ba)
    b.attach(tx_link=ba, rx_link=ab)


def make_host_adapter(env, name="host0"):
    clock = Clock(2_000_000_000)
    cpu = HostCPU(env, build_host_hierarchy(clock), name=name, clock=clock)
    return cpu, HCA(env, name, cpu)


def test_send_and_poll_receive():
    env = Environment()
    cpu, hca = make_host_adapter(env)
    peer = ChannelAdapter(env, "peer")
    wire_pair(env, hca, peer)

    def sender(env):
        yield from hca.send("peer", size_bytes=256, payload="hello")

    def receiver(env):
        message = yield peer.recv_queue.get()
        return message

    env.process(sender(env))
    proc = env.process(receiver(env))
    message = env.run(until=proc)
    assert message.size_bytes == 256
    assert message.payload == "hello"
    assert message.src == "host0"


def test_send_charges_host_overhead():
    env = Environment()
    cpu, hca = make_host_adapter(env)
    peer = ChannelAdapter(env, "peer")
    wire_pair(env, hca, peer)

    def sender(env):
        yield from hca.send("peer", size_bytes=64)

    env.process(sender(env))
    env.run()
    assert cpu.accounting.busy_ps >= hca.config.send_overhead_ps


def test_poll_receive_charges_host_overhead():
    env = Environment()
    cpu_a, hca_a = make_host_adapter(env, "a")
    cpu_b, hca_b = make_host_adapter(env, "b")
    wire_pair(env, hca_a, hca_b)

    def sender(env):
        yield from hca_a.send("b", size_bytes=64)

    def receiver(env):
        yield from hca_b.poll_receive()

    env.process(sender(env))
    proc = env.process(receiver(env))
    env.run(until=proc)
    assert cpu_b.accounting.busy_ps >= hca_b.config.recv_poll_ps


def test_multi_packet_message_reassembled():
    env = Environment()
    cpu, hca = make_host_adapter(env)
    peer = ChannelAdapter(env, "peer")
    wire_pair(env, hca, peer)

    def sender(env):
        yield from hca.send("peer", size_bytes=1600)

    def receiver(env):
        return (yield peer.recv_queue.get())

    env.process(sender(env))
    proc = env.process(receiver(env))
    message = env.run(until=proc)
    assert message.size_bytes == 1600
    assert peer.traffic.messages_in == 1
    assert peer.traffic.bytes_in == 1600


def test_traffic_counters():
    env = Environment()
    cpu, hca = make_host_adapter(env)
    peer = ChannelAdapter(env, "peer")
    wire_pair(env, hca, peer)

    def sender(env):
        yield from hca.send("peer", size_bytes=300)

    env.process(sender(env))
    env.run()
    assert hca.traffic.bytes_out == 300
    assert hca.traffic.messages_out == 1


def test_bulk_accounting():
    env = Environment()
    adapter = ChannelAdapter(env, "x")
    adapter.account_bulk_in(1000)
    adapter.account_bulk_out(500)
    assert adapter.traffic.bytes_in == 1000
    assert adapter.traffic.bytes_out == 500
    assert adapter.traffic.total_bytes == 1500


def test_send_without_attach_raises():
    env = Environment()
    cpu, hca = make_host_adapter(env)

    def sender(env):
        yield from hca.send("peer", size_bytes=1)

    env.process(sender(env))
    try:
        env.run()
        raised = False
    except RuntimeError:
        raised = True
    assert raised


def test_interrupt_receive_mode_charges_interrupt_cost():
    env = Environment()
    clock = Clock(2_000_000_000)
    cpu = HostCPU(env, build_host_hierarchy(clock), name="h", clock=clock)
    config = HcaConfig(receive_mode="interrupt", interrupt_cost_ps=5_000_000)
    hca = HCA(env, "h", cpu, config=config)
    peer_cpu, peer = make_host_adapter(env, "peer")
    wire_pair(env, hca, peer)

    def sender(env):
        yield from peer.send("h", size_bytes=64)

    def receiver(env):
        yield from hca.poll_receive()

    env.process(sender(env))
    proc = env.process(receiver(env))
    env.run(until=proc)
    assert cpu.accounting.busy_ps >= 5_000_000


def test_invalid_receive_mode_rejected():
    import pytest
    with pytest.raises(ValueError):
        HcaConfig(receive_mode="psychic")

"""Fail-stop link behaviour: dead wires, ACK escalation, backoff caps."""

import pytest

from repro.faults import FaultInjector, FaultPlan, LinkFaults
from repro.net import Link, LinkConfig, LinkTransmissionError, Packet
from repro.sim import Environment
from repro.sim.units import us


def _faulty_link(env, link_faults, seed=0, config=LinkConfig()):
    link = Link(env, "l", config)
    link.attach_faults(FaultInjector(FaultPlan(link=link_faults), seed=seed))
    return link


def _send_one(env, link, failures):
    def sender(env):
        try:
            yield from link.send(Packet("a", "b", payload_bytes=64))
        except LinkTransmissionError as exc:
            failures.append(exc)
    env.process(sender(env))


# ----------------------------------------------------------------------
# A dead wire: every copy vanishes, the sender escalates
# ----------------------------------------------------------------------
def test_dead_wire_abandons_after_retry_budget():
    env = Environment()
    link = _faulty_link(env, LinkFaults(max_retries=3))
    link.fail()
    failures = []
    _send_one(env, link, failures)
    env.run()
    assert len(failures) == 1
    # All copies vanished: counted as drops, one abandonment.
    assert link.stats.packets_sent == 4
    assert link.stats.packets_dropped == 4
    assert link.stats.packets_abandoned == 1
    assert link.stats.packets_delivered == 0
    link.assert_credit_conservation()
    assert link._credits.level == link.config.credits


def test_dead_wire_declares_down_and_fires_listeners():
    env = Environment()
    link = _faulty_link(env, LinkFaults(max_retries=1))
    fired = []
    link.add_down_listener(lambda: fired.append(env.now))
    link.fail()
    _send_one(env, link, failures=[])
    env.run()
    assert link.declared_down_at == env.now
    assert fired == [env.now]
    # Idempotent: a second exhausted packet must not re-declare.
    _send_one(env, link, failures=[])
    env.run()
    assert len(fired) == 1


def test_dead_wire_without_fault_plan_uses_fallback_policy():
    """A link can die by explicit fail() with no injector attached; the
    sender still escalates instead of retrying forever."""
    env = Environment()
    link = Link(env, "l")
    link.fail()
    failures = []
    _send_one(env, link, failures)
    env.run()
    assert len(failures) == 1
    assert link.declared_down_at is not None
    link.assert_credit_conservation()


def test_down_outcome_skips_injector_draw():
    """Fail-stop must not consume the transient fault stream: a run with
    the wire down draws nothing, keeping other links' schedules aligned."""
    env = Environment()
    plan = FaultPlan(link=LinkFaults(drop_rate=0.5, max_retries=2))
    injector = FaultInjector(plan, seed=3)
    link = Link(env, "l")
    link.attach_faults(injector)
    link.fail()
    before = injector.snapshot()
    _send_one(env, link, failures=[])
    env.run()
    after = injector.snapshot()
    assert before.get("injected_link_drop", 0.0) == \
        after.get("injected_link_drop", 0.0)


def test_notify_fires_exactly_once_on_abandonment():
    """The compose buffer must be recycled even for an abandoned packet
    (no retransmission will ever need it again)."""
    env = Environment()
    link = _faulty_link(env, LinkFaults(max_retries=1))
    link.fail()
    packet = Packet("a", "b", payload_bytes=64)
    packet.notify = env.event()
    fired = []
    packet.notify.callbacks.append(lambda e: fired.append(env.now))

    def sender(env):
        with pytest.raises(LinkTransmissionError):
            yield from link.send(packet)

    env.process(sender(env))
    env.run()
    assert len(fired) == 1


def test_revive_restores_delivery_but_not_declaration():
    env = Environment()
    link = _faulty_link(env, LinkFaults(max_retries=1))
    link.fail()
    _send_one(env, link, failures=[])
    env.run()
    assert link.declared_down_at is not None
    link.revive()
    assert not link.is_down
    # The declaration persists until the management plane clears it.
    assert link.declared_down_at is not None
    received = []

    def sender(env):
        yield from link.send(Packet("a", "b", payload_bytes=64))

    def receiver(env):
        received.append((yield from link.receive()))

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    assert len(received) == 1


# ----------------------------------------------------------------------
# Backoff cap
# ----------------------------------------------------------------------
def test_max_backoff_caps_waits_and_counts_them():
    env = Environment()
    faults = LinkFaults(ack_timeout_ps=us(5), backoff_factor=2.0,
                        max_backoff_ps=us(10), max_retries=4)
    link = _faulty_link(env, faults)
    link.fail()
    _send_one(env, link, failures=[])
    start = env.now
    env.run()
    # Waits: 5, 10, capped(20->10), capped(40->10) us.
    serialization = link.serialization_ps(64 + 16)
    assert env.now - start == 5 * serialization + us(5) + 3 * us(10)
    assert link.stats.capped_backoffs == 2


def test_uncapped_backoff_still_grows_exponentially():
    env = Environment()
    faults = LinkFaults(ack_timeout_ps=us(5), backoff_factor=2.0,
                        max_retries=3)
    link = _faulty_link(env, faults)
    link.fail()
    _send_one(env, link, failures=[])
    env.run()
    serialization = link.serialization_ps(64 + 16)
    assert env.now == 4 * serialization + us(5) + us(10) + us(20)
    assert link.stats.capped_backoffs == 0


def test_max_backoff_cannot_undercut_first_timeout():
    with pytest.raises(ValueError, match="max_backoff_ps"):
        LinkFaults(ack_timeout_ps=us(5), max_backoff_ps=us(1))


# ----------------------------------------------------------------------
# Conservation under fail-stop
# ----------------------------------------------------------------------
def test_outcome_conservation_holds_for_abandoned_packets():
    env = Environment()
    link = _faulty_link(env, LinkFaults(max_retries=2))
    link.fail()
    for _ in range(3):
        _send_one(env, link, failures=[])
    env.run()
    s = link.stats
    assert s.packets_sent == (s.packets_delivered + s.packets_dropped
                              + s.packets_corrupted)
    assert s.packets_abandoned == 3

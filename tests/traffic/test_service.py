"""``repro.serve()``: determinism, caching, reporting, observability."""

import pytest

import repro
from repro.obs import TraceCollector
from repro.traffic import (ServiceSpec, make_service_spec, serve,
                           service_key, sweep_offered_load)
from repro.traffic.service import _simulate

#: Small-but-real configuration: fast enough for CI, busy enough to
#: exercise queueing (~40 requests through 4 workers).
FAST = dict(app="grep", case="active", rate_rps=4000.0, duration_s=0.01,
            num_streams=8, num_keys=32, depth=16, workers=4, seed=5,
            slo_ms=5.0)


@pytest.fixture(scope="module")
def fast_result():
    return serve(ServiceSpec(**FAST))


# ----------------------------------------------------------------------
# Spec construction and validation
# ----------------------------------------------------------------------
def test_spec_is_frozen_and_hashable():
    spec = ServiceSpec(**FAST)
    assert hash(spec) == hash(ServiceSpec(**FAST))
    with pytest.raises(Exception):
        spec.rate_rps = 1.0


def test_spec_validation():
    with pytest.raises(ValueError, match="unknown service case"):
        ServiceSpec(case="turbo")
    with pytest.raises(ValueError, match="unknown arrival kind"):
        ServiceSpec(arrival="weibull")
    with pytest.raises(ValueError, match="unknown topology"):
        ServiceSpec(topology="torus")
    with pytest.raises(ValueError, match="unknown admission policy"):
        ServiceSpec(policy="tail-drop")
    with pytest.raises(ValueError, match="rate_rps"):
        ServiceSpec(rate_rps=0)
    with pytest.raises(ValueError, match="hosts >= 2"):
        ServiceSpec(topology="fat_tree", hosts=1)
    with pytest.raises(ValueError, match="slo_ms"):
        ServiceSpec(slo_ms=0.0)


def test_make_service_spec_normalizes_overrides():
    spec = make_service_spec("grep", overrides={"num_disks": 16},
                             rate_rps=100.0)
    assert spec.overrides == (("num_disks", 16),)
    passthrough = make_service_spec(spec)
    assert passthrough is spec
    with pytest.raises(ValueError, match="inside the ServiceSpec"):
        make_service_spec(spec, rate_rps=200.0)


def test_at_rate_changes_only_the_rate():
    spec = ServiceSpec(**FAST)
    faster = spec.at_rate(9000.0)
    assert faster.rate_rps == 9000.0
    assert faster.at_rate(spec.rate_rps) == spec


def test_service_key_tracks_content():
    a = ServiceSpec(**FAST)
    b = ServiceSpec(**{**FAST, "seed": 6})
    assert service_key(a) == service_key(ServiceSpec(**FAST))
    assert service_key(a) != service_key(b)


# ----------------------------------------------------------------------
# Determinism and caching
# ----------------------------------------------------------------------
def test_serve_is_deterministic(fast_result):
    again = serve(ServiceSpec(**FAST))
    assert again.to_dict() == fast_result.to_dict()


def test_cache_round_trip_is_bit_identical(fast_result, tmp_path):
    warm = serve(ServiceSpec(**FAST), cache=tmp_path)
    restored = serve(ServiceSpec(**FAST), cache=tmp_path)
    assert warm.to_dict() == fast_result.to_dict()
    assert restored.to_dict() == fast_result.to_dict()


def test_result_codec_is_lossless(fast_result):
    from repro.traffic import ServiceResult
    import json

    payload = json.loads(json.dumps(fast_result.to_dict()))
    assert ServiceResult.from_dict(payload).to_dict() == \
        fast_result.to_dict()


def test_tracing_does_not_change_the_measurement(fast_result):
    collector = TraceCollector()
    traced = serve(ServiceSpec(**FAST), trace=collector)
    assert traced.to_dict() == fast_result.to_dict()


# ----------------------------------------------------------------------
# Measured quantities
# ----------------------------------------------------------------------
def test_accounting_identities(fast_result):
    r = fast_result
    assert r.offered == r.admitted + r.dropped
    assert r.completed == r.admitted
    assert r.streams >= 1
    assert r.latency_us["count"] == float(r.completed)
    assert 0.0 <= r.slo_attainment <= 1.0
    assert r.horizon_ps >= r.duration_ps
    # Latency includes queue delay and service time (plus network).
    assert r.latency_us["p50"] > r.service_time_us["p50"] * 0.5
    assert r.admission["offered"] == float(r.offered)


def test_latency_fields_present(fast_result):
    for series in (fast_result.latency_us, fast_result.queue_delay_us,
                   fast_result.service_time_us):
        for key in ("count", "mean", "p50", "p95", "p99", "max"):
            assert key in series


def test_normal_and_active_differ():
    normal = serve(ServiceSpec(**{**FAST, "case": "normal"}))
    active = serve(ServiceSpec(**FAST))
    assert normal.to_dict() != active.to_dict()


def test_drop_policy_sheds_under_overload():
    overload = ServiceSpec(**{**FAST, "rate_rps": 50000.0, "depth": 4,
                              "workers": 1})
    result = serve(overload)
    assert result.dropped > 0
    assert result.drop_rate > 0.0
    assert not result.meets_slo(max_drop_rate=0.01)


def test_backpressure_never_drops():
    result = serve(ServiceSpec(**{**FAST, "rate_rps": 20000.0,
                                  "policy": "backpressure", "depth": 4}))
    assert result.dropped == 0
    assert result.completed == result.offered


# ----------------------------------------------------------------------
# Observability: the request lifecycle emits spans
# ----------------------------------------------------------------------
def test_request_lifecycle_instants():
    collector = TraceCollector()
    result = serve(ServiceSpec(**FAST), trace=collector)
    names = [e.name for e in collector.events if e.component == "traffic"]
    for name in ("service.arrival", "service.admit", "service.dispatch",
                 "service.complete"):
        assert names.count(name) > 0, name
    assert names.count("service.arrival") == result.offered
    assert names.count("service.admit") == result.admitted
    assert names.count("service.complete") == result.completed


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def test_report_latency_renders(fast_result):
    text = fast_result.report().latency()
    assert "latency (us)" in text
    assert "queue delay (us)" in text
    assert "p99" in text
    assert "goodput RPS" in text
    assert "SLO (ms)" in text
    assert fast_result.report().render()  # full render works too


def test_repro_namespace_exports():
    assert repro.serve is serve
    assert repro.ServiceSpec is ServiceSpec
    spec = repro.make_service_spec("grep", rate_rps=10.0)
    assert isinstance(spec, repro.ServiceSpec)


# ----------------------------------------------------------------------
# Offered-load sweeps
# ----------------------------------------------------------------------
def test_sweep_knee_on_one_switch():
    spec = ServiceSpec(**{**FAST, "slo_ms": 1.0})
    sweep = sweep_offered_load(spec, (1000.0, 4000.0))
    assert sweep.rates() == [1000.0, 4000.0]
    knee = sweep.knee()
    assert knee["slo_ms"] == 1.0
    assert set(knee) == {"slo_ms", "max_sustainable_rps", "goodput_rps",
                         "p99_us", "knee_rps"}
    assert "p99us" in sweep.table()


def test_sweep_uses_cache(tmp_path):
    spec = ServiceSpec(**FAST)
    first = sweep_offered_load(spec, (1000.0, 2000.0), cache=tmp_path)
    second = sweep_offered_load(spec, (1000.0, 2000.0), cache=tmp_path)
    assert [r.to_dict() for r in first.results] == \
        [r.to_dict() for r in second.results]


def test_simulate_equals_serve():
    # The pool entry point and the front door agree exactly.
    spec = ServiceSpec(**FAST)
    assert _simulate(spec).to_dict() == serve(spec).to_dict()

"""The HCA admission queue: bounded depth, drop vs backpressure."""

import pytest

from repro.net import ChannelAdapter
from repro.sim import Environment
from repro.traffic import CLOSED, AdmissionQueue


def test_drop_policy_sheds_overflow_immediately():
    env = Environment()
    queue = AdmissionQueue(env, depth=2, policy="drop")
    outcomes = []

    def offerer(env):
        for i in range(5):
            admitted = yield from queue.offer(i)
            outcomes.append(admitted)

    env.process(offerer(env))
    env.run()
    # No consumer: the first two fill the queue, the rest shed.
    assert outcomes == [True, True, False, False, False]
    assert queue.offered == 5
    assert queue.admitted == 2
    assert queue.dropped == 3
    assert queue.drop_rate == pytest.approx(0.6)
    assert queue.queued == 2


def test_backpressure_blocks_until_a_slot_frees():
    env = Environment()
    queue = AdmissionQueue(env, depth=1, policy="backpressure")
    admitted_at = []
    taken = []

    def offerer(env):
        for i in range(3):
            yield from queue.offer(i)
            admitted_at.append(env.now)

    def consumer(env):
        while len(taken) < 3:
            yield env.timeout(100)
            entry = yield from queue.take()
            taken.append(entry)

    env.process(offerer(env))
    env.process(consumer(env))
    env.run()
    assert queue.dropped == 0
    assert queue.admitted == 3
    assert [item for _, item in taken] == [0, 1, 2]
    # Offers 1 and 2 could only land after a take freed the single slot.
    assert admitted_at[0] == 0
    assert admitted_at[1] >= 100
    assert admitted_at[2] >= 200
    # The entry timestamp is the *offer* time, not the admit time:
    # item 1 was offered at t=0 and blocked until the t=100 take, so
    # its blocked wait counts as queue delay.  Item 2's offer only
    # started once item 1's resolved.
    offer_times = [offer_ps for offer_ps, _ in taken]
    assert offer_times[0] == 0
    assert offer_times[1] == 0
    assert offer_times[1] < admitted_at[1]


def test_close_drains_admitted_before_sentinel():
    env = Environment()
    queue = AdmissionQueue(env, depth=4, policy="drop")
    seen = []

    def offerer(env):
        for i in range(3):
            yield from queue.offer(i)
        queue.close(consumers=2)

    def worker(env):
        while True:
            entry = yield from queue.take()
            if entry is CLOSED:
                seen.append("closed")
                return
            seen.append(entry[1])

    env.process(offerer(env))
    env.process(worker(env))
    env.process(worker(env))
    env.run()
    assert seen[-2:] == ["closed", "closed"]
    assert sorted(x for x in seen if x != "closed") == [0, 1, 2]


def test_snapshot_and_depth_signal():
    env = Environment()
    queue = AdmissionQueue(env, depth=8, policy="drop")

    def script(env):
        yield from queue.offer("a")
        yield from queue.offer("b")
        yield env.timeout(1000)
        yield from queue.take()

    env.process(script(env))
    env.run()
    snap = queue.snapshot(env.now)
    assert snap["offered"] == 2.0
    assert snap["admitted"] == 2.0
    assert snap["dropped"] == 0.0
    assert snap["max_depth"] == 2
    assert 0.0 < snap["mean_depth"] <= 2.0


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        AdmissionQueue(env, depth=0)
    with pytest.raises(ValueError):
        AdmissionQueue(env, depth=4, policy="tail-drop")


def test_hca_reliability_surfaces_admission_counters():
    env = Environment()
    adapter = ChannelAdapter(env, "host0")
    assert "admission_offered" not in adapter.reliability()
    queue = AdmissionQueue(env, depth=1, policy="drop")
    adapter.attach_admission(queue)

    def offerer(env):
        yield from queue.offer("x")
        yield from queue.offer("y")

    env.process(offerer(env))
    env.run()
    stats = adapter.reliability()
    assert stats["admission_offered"] == 2
    assert stats["admission_dropped"] == 1

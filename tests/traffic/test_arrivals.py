"""Arrival generators: deterministic, correctly shaped, correctly rated."""

import pytest

from repro.traffic import ARRIVAL_KINDS, generate_schedule

_PS = 1_000_000_000_000


def _schedule(kind, seed=0, rate=5000.0, duration=0.05, **kw):
    return generate_schedule(kind, rate, duration, num_streams=16,
                             num_keys=64, zipf_exponent=1.1, seed=seed, **kw)


@pytest.mark.parametrize("kind", ARRIVAL_KINDS)
def test_same_seed_same_schedule(kind):
    assert _schedule(kind, seed=3) == _schedule(kind, seed=3)


@pytest.mark.parametrize("kind", ARRIVAL_KINDS)
def test_different_seed_different_schedule(kind):
    assert _schedule(kind, seed=3) != _schedule(kind, seed=4)


@pytest.mark.parametrize("kind", ARRIVAL_KINDS)
def test_schedule_shape(kind):
    schedule = _schedule(kind)
    assert schedule, "expected a non-empty schedule"
    assert [a.index for a in schedule] == list(range(len(schedule)))
    times = [a.t_ps for a in schedule]
    assert times == sorted(times)
    assert all(0 <= a.t_ps < int(0.05 * _PS) for a in schedule)
    assert all(0 <= a.stream < 16 for a in schedule)
    assert all(0 <= a.key_rank < 64 for a in schedule)


@pytest.mark.parametrize("kind", ARRIVAL_KINDS)
def test_mean_rate_is_close_to_requested(kind):
    # 5000 rps over 50 ms ~ 250 arrivals; all three processes are
    # rebalanced to the requested long-run mean.
    n = len(_schedule(kind))
    assert 150 <= n <= 350, n


def test_bursty_is_burstier_than_poisson():
    # Variance of per-millisecond counts: the MMPP on/off source must
    # exceed the memoryless one.
    def ms_count_var(kind):
        counts = [0] * 50
        for a in _schedule(kind):
            counts[min(a.t_ps * 1000 // _PS, 49)] += 1
        mean = sum(counts) / len(counts)
        return sum((c - mean) ** 2 for c in counts) / len(counts)

    assert ms_count_var("bursty") > ms_count_var("poisson")


def test_diurnal_ramps_up():
    # lambda ramps 0.5x -> 1.5x: the second half must hold more
    # arrivals than the first.
    schedule = _schedule("diurnal", rate=20000.0)
    half = int(0.025 * _PS)
    first = sum(1 for a in schedule if a.t_ps < half)
    second = len(schedule) - first
    assert second > first


def test_zipf_keys_are_skewed():
    schedule = _schedule("poisson", rate=20000.0)
    hot = sum(1 for a in schedule if a.key_rank == 0)
    # Rank 0 of Zipf(1.1) over 64 keys holds ~18% of the mass; uniform
    # would give ~1.6%.
    assert hot / len(schedule) > 0.08


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown arrival kind"):
        _schedule("weibull")


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        _schedule("poisson", rate=0.0)
    with pytest.raises(ValueError):
        _schedule("poisson", duration=-1.0)
    with pytest.raises(ValueError):
        # burst_fraction * burst_factor >= 1 leaves a negative off rate.
        _schedule("bursty", burst_factor=4.0, burst_fraction=0.3)

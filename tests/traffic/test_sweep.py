"""Adaptive knee search vs the exhaustive grid (``find_knee``).

The contract under test: on any monotone curve the adaptive bisection
returns the *same* knee as the exhaustive golden grid while running at
most ⌈log2(n+1)⌉ simulations for an n-point grid; the sustained-prefix
definition makes non-monotone (noisy) curves report the first break,
never a sustained point beyond it; and a warm result cache makes a
repeated search cost zero new simulations.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import (GOODPUT_TOLERANCE, KNEE_MODES, KneeSearch,
                           ServiceResult, ServiceSpec, ServiceSweep,
                           find_knee)

#: Same small-but-real configuration the service tests use.
FAST = dict(app="grep", case="active", rate_rps=4000.0, duration_s=0.01,
            num_streams=8, num_keys=32, depth=16, workers=4, seed=5,
            slo_ms=5.0)

#: Counter keys excluded when comparing knee verdicts across modes.
COUNTERS = ("sims", "evaluations")


def synthetic(rate: float, ok: bool) -> ServiceResult:
    """A ServiceResult that is (un)sustained purely via goodput."""
    offered = max(int(rate), 1)
    goodput = rate if ok else rate * 0.5
    return ServiceResult(
        name="synthetic", app="grep", case="active", topology="single",
        arrival="poisson", policy="drop", rate_rps=rate, seed=0,
        slo_ms=None, duration_ps=10**12, horizon_ps=10**12,
        offered=offered, admitted=offered, dropped=0, completed=offered,
        drop_rate=0.0, offered_rps=rate, throughput_rps=goodput,
        goodput_rps=goodput, slo_attainment=1.0,
        latency_us={"count": float(offered), "p50": 10.0, "p95": 10.0,
                    "p99": 10.0, "mean": 10.0, "max": 10.0},
        queue_delay_us={}, service_time_us={}, streams=1,
        worst_stream_p99_us=None)


def monotone(boundary_rps: float):
    """An evaluate() hook: sustained iff strictly under ``boundary_rps``."""
    return lambda point: synthetic(point.rate_rps,
                                   point.rate_rps < boundary_rps)


def verdict(search: KneeSearch) -> dict:
    return {k: v for k, v in search.knee().items() if k not in COUNTERS}


# ----------------------------------------------------------------------
# ServiceSweep.knee(): the sustained-prefix regression
# ----------------------------------------------------------------------
def test_knee_is_defined_on_the_sustained_prefix():
    # 1000 holds, 2000 breaks, 3000 "holds" again (noise): the knee is
    # 2000 and max sustainable is 1000 — the later sustained point must
    # not be reported as capacity the configuration already failed at.
    sweep = ServiceSweep(spec=ServiceSpec(**FAST), results=[
        synthetic(1000.0, True),
        synthetic(2000.0, False),
        synthetic(3000.0, True),
    ])
    knee = sweep.knee()
    assert knee["max_sustainable_rps"] == 1000.0
    assert knee["knee_rps"] == 2000.0
    assert knee["max_sustainable_rps"] < knee["knee_rps"]


def test_knee_when_everything_holds_or_breaks():
    spec = ServiceSpec(**FAST)
    held = ServiceSweep(spec=spec, results=[synthetic(r, True)
                                            for r in (1000.0, 2000.0)])
    assert held.knee()["knee_rps"] is None
    assert held.knee()["max_sustainable_rps"] == 2000.0
    broke = ServiceSweep(spec=spec, results=[synthetic(r, False)
                                             for r in (1000.0, 2000.0)])
    assert broke.knee()["knee_rps"] == 1000.0
    assert broke.knee()["max_sustainable_rps"] is None


# ----------------------------------------------------------------------
# find_knee on grids: adaptive == golden grid, at O(log) cost
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(n=st.integers(min_value=1, max_value=24),
       boundary=st.integers(min_value=0, max_value=25))
def test_adaptive_matches_grid_on_any_monotone_curve(n, boundary):
    # Boundary index `boundary` clamps to [0, n]: every point below it
    # sustains, every point at/after it breaks — all monotone shapes
    # including all-held and all-broke.
    rates = [100.0 * (i + 1) for i in range(n)]
    cut = min(boundary, n)
    curve = monotone(rates[cut] if cut < n else rates[-1] + 1.0)
    spec = ServiceSpec(**FAST)
    grid = find_knee(spec, rates, mode="grid", evaluate=curve)
    adaptive = find_knee(spec, rates, mode="adaptive", evaluate=curve)
    assert verdict(adaptive) == verdict(grid)
    assert grid.sims == n
    assert adaptive.sims <= math.ceil(math.log2(n + 1))


def test_adaptive_matches_grid_on_a_real_simulation():
    spec = ServiceSpec(**{**FAST, "slo_ms": 1.0})
    rates = (1000.0, 2000.0, 4000.0, 8000.0)
    grid = find_knee(spec, rates, mode="grid")
    adaptive = find_knee(spec, rates, mode="adaptive")
    assert verdict(adaptive) == verdict(grid)
    assert grid.sims == len(rates)
    assert adaptive.sims <= 3  # ceil(log2(5))


def test_search_accounting_and_sweep_view():
    rates = [100.0 * (i + 1) for i in range(16)]
    search = find_knee(ServiceSpec(**FAST), rates,
                       evaluate=monotone(850.0))
    assert search.sims == search.evaluations == len(search.probes)
    assert search.sims <= 5  # ceil(log2(17)); this boundary takes 4
    assert search.cache_hits == 0
    assert search.knee_rps == 900.0
    assert search.best is not None and search.best.rate_rps == 800.0
    view = search.sweep()
    assert view.rates() == sorted(search.probes)


def test_cached_rerun_costs_zero_simulations(tmp_path):
    spec = ServiceSpec(**FAST)
    rates = (1000.0, 2000.0)
    cold = find_knee(spec, rates, cache=tmp_path)
    assert cold.sims > 0 and cold.cache_hits == 0
    warm = find_knee(spec, rates, cache=tmp_path)
    assert warm.sims == 0
    assert warm.cache_hits == warm.evaluations > 0
    assert warm.knee() == cold.knee() | {"sims": 0}


def test_grid_points_are_reusable_by_full_sweeps(tmp_path):
    # The adaptive search and sweep_offered_load share cache keys: a
    # sweep over the probed rates costs only the points the search
    # skipped.
    from repro.traffic import sweep_offered_load

    spec = ServiceSpec(**FAST)
    rates = (1000.0, 2000.0)
    search = find_knee(spec, rates, cache=tmp_path)
    sweep = sweep_offered_load(spec, rates, cache=tmp_path)
    by_rate = {r.rate_rps: r for r in search.results}
    for result in sweep.results:
        if result.rate_rps in by_rate:
            assert result.to_dict() == by_rate[result.rate_rps].to_dict()


# ----------------------------------------------------------------------
# find_knee on continuous ranges
# ----------------------------------------------------------------------
def test_continuous_search_brackets_the_boundary():
    search = find_knee(ServiceSpec(**{**FAST, "rate_rps": 500.0}),
                       resolution=50.0, evaluate=monotone(3500.0))
    assert search.knee_rps is not None
    # The reported knee is the first *unsustained* rate of the final
    # bracket: at or above the true boundary, within one resolution.
    assert 3500.0 <= search.knee_rps <= 3500.0 + 50.0
    assert search.best is not None
    assert search.best.rate_rps < 3500.0


def test_continuous_search_immediate_break_and_hi_cap():
    spec = ServiceSpec(**{**FAST, "rate_rps": 500.0})
    broke = find_knee(spec, evaluate=monotone(100.0))
    assert broke.knee_rps == 500.0 and broke.best is None
    held = find_knee(spec, hi=2000.0, evaluate=monotone(99999.0))
    assert held.knee_rps is None
    assert held.best is not None and held.best.rate_rps == 2000.0


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_find_knee_validation():
    spec = ServiceSpec(**FAST)
    assert set(KNEE_MODES) == {"adaptive", "grid"}
    with pytest.raises(ValueError, match="mode"):
        find_knee(spec, (1000.0,), mode="turbo")
    with pytest.raises(ValueError, match="non-empty"):
        find_knee(spec, ())
    with pytest.raises(ValueError, match="lo must be positive"):
        find_knee(spec, lo=0.0, evaluate=monotone(1.0))
    with pytest.raises(ValueError, match="resolution"):
        find_knee(spec, resolution=-1.0, evaluate=monotone(1.0))


def test_goodput_tolerance_is_the_sustain_threshold():
    # Right at the tolerance the point still counts as sustained.
    result = synthetic(1000.0, True)
    result.goodput_rps = GOODPUT_TOLERANCE * result.offered_rps
    sweep = ServiceSweep(spec=ServiceSpec(**FAST), results=[result])
    assert sweep.knee()["knee_rps"] is None

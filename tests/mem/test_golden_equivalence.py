"""Golden-stats equivalence: batched vs per-line memory hot path.

The batched range/stride fast paths in :mod:`repro.mem.hierarchy` claim
bit-identity with the scalar reference path (``REPRO_MEM_PERLINE=1``).
These tests prove it the strong way: every paper application, all four
configurations, run once per path, comparing the full
:class:`CaseResult` (execution time, breakdowns, traffic) and the full
:class:`MetricsRegistry` snapshot — every ``CacheStats``, TLB, RDRAM,
and stall-picosecond counter for every CPU in the system — for exact
equality.  A fault-free chaos-preset cell checks the same through the
recovery-capable configuration.
"""

from dataclasses import replace

import pytest

from repro.cluster.config import case_configs
from repro.cluster.presets import chaos_2003
from repro.faults.plan import FaultPlan
from repro.runner.harness import CASE_LABELS, Cell, cell_config
from repro.runner.spec import paper_grid

#: Extra factor on the registry scales — enough work to exercise every
#: path (TLB chunk boundaries, L2 writebacks, multi-node apps) while
#: keeping the double grid fast.
SCALE_FACTOR = 0.05

_GRID = {spec.label: spec for spec in paper_grid(scale=SCALE_FACTOR)}


def _run_case(app, config, perline, monkeypatch):
    """One simulation; returns (CaseResult, metrics snapshot)."""
    if perline:
        monkeypatch.setenv("REPRO_MEM_PERLINE", "1")
    else:
        monkeypatch.delenv("REPRO_MEM_PERLINE", raising=False)
    sink = {}
    result = app.run_case(config, metrics_sink=sink)
    return result, sink


def _assert_identical(label, batched, perline):
    result_b, sink_b = batched
    result_p, sink_p = perline
    diff = {k: (sink_p.get(k), sink_b.get(k))
            for k in set(sink_p) | set(sink_b)
            if sink_p.get(k) != sink_b.get(k)}
    assert diff == {}, f"{label}: counters diverge: {diff}"
    assert result_b == result_p, f"{label}: CaseResult diverges"


@pytest.mark.parametrize("label", sorted(_GRID))
def test_batched_path_is_bit_identical(label, monkeypatch):
    spec = _GRID[label]
    app = spec.build()
    for case in CASE_LABELS:
        config = cell_config(Cell(spec=spec, case=case, seed=None), app)
        batched = _run_case(app, config, False, monkeypatch)
        perline = _run_case(app, config, True, monkeypatch)
        _assert_identical(f"{label}/{case}", batched, perline)


def test_chaos_preset_fault_free_is_bit_identical(monkeypatch):
    """Same equivalence through the chaos preset (faults zeroed)."""
    from repro.apps.grep import GrepApp

    app = GrepApp(scale=SCALE_FACTOR)
    base = app.cluster_config()
    config = replace(
        chaos_2003(seed=0, faults=FaultPlan()),
        num_hosts=base.num_hosts,
        num_storage=base.num_storage,
        num_switch_cpus=base.num_switch_cpus,
        database_scaled_caches=base.database_scaled_caches,
        cache_scale_divisor=base.cache_scale_divisor,
    )
    for label, case_config in case_configs(config):
        batched = _run_case(app, case_config, False, monkeypatch)
        perline = _run_case(app, case_config, True, monkeypatch)
        _assert_identical(f"chaos/{label}", batched, perline)


def test_perline_flag_controls_path(monkeypatch):
    """The debug flag actually selects the scalar reference path."""
    from repro.mem.hierarchy import build_host_hierarchy
    from repro.sim.units import Clock

    monkeypatch.delenv("REPRO_MEM_PERLINE", raising=False)
    assert build_host_hierarchy(Clock(2e9)).batched
    monkeypatch.setenv("REPRO_MEM_PERLINE", "1")
    assert not build_host_hierarchy(Clock(2e9)).batched

"""Unit and property tests for the TLB model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import TLB, TLBConfig


def test_cold_miss_then_hit():
    tlb = TLB(TLBConfig("t", entries=4))
    assert not tlb.access(0x1000)
    assert tlb.access(0x1000)


def test_same_page_hits():
    tlb = TLB(TLBConfig("t", entries=4, page_size=4096))
    tlb.access(0x0)
    assert tlb.access(0xFFF)
    assert not tlb.access(0x1000)


def test_lru_replacement():
    tlb = TLB(TLBConfig("t", entries=2, page_size=4096))
    tlb.access(0x0000)  # page 0
    tlb.access(0x1000)  # page 1
    tlb.access(0x0000)  # touch page 0
    tlb.access(0x2000)  # page 2 evicts page 1
    assert tlb.access(0x0000)
    assert not tlb.access(0x1000)


def test_flush():
    tlb = TLB(TLBConfig("t", entries=4))
    tlb.access(0x0)
    tlb.flush()
    assert not tlb.access(0x0)


def test_stats():
    tlb = TLB(TLBConfig("t", entries=64))
    tlb.access(0x0)
    tlb.access(0x0)
    assert tlb.stats.accesses == 2
    assert tlb.stats.misses == 1
    assert tlb.stats.miss_rate == pytest.approx(0.5)


def test_config_validation():
    with pytest.raises(ValueError):
        TLBConfig("t", entries=0)
    with pytest.raises(ValueError):
        TLBConfig("t", page_size=1000)


def test_sequential_scan_miss_rate_matches_page_granularity():
    # Scanning 64 KB with 4 KB pages through a large TLB: 16 misses.
    tlb = TLB(TLBConfig("t", entries=64, page_size=4096))
    for addr in range(0, 64 * 1024, 32):
        tlb.access(addr)
    assert tlb.stats.misses == 16


@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 30),
                      min_size=1, max_size=300))
@settings(max_examples=50, deadline=None)
def test_property_capacity_never_exceeded(addrs):
    tlb = TLB(TLBConfig("t", entries=8))
    for addr in addrs:
        tlb.access(addr)
        assert len(tlb._pages) <= 8


@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 30),
                      min_size=1, max_size=300))
@settings(max_examples=50, deadline=None)
def test_property_rereference_hits(addrs):
    tlb = TLB(TLBConfig("t", entries=16))
    for addr in addrs:
        tlb.access(addr)
        assert tlb.access(addr)

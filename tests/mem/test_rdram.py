"""Unit tests for the RDRAM model."""

import pytest

from repro.mem import Rdram, RdramConfig
from repro.sim.units import ns


def test_page_miss_then_hit():
    mem = Rdram()
    first = mem.access(0x0, nbytes=128)
    second = mem.access(0x80, nbytes=128)  # same 2 KB page
    assert first > second
    assert mem.stats.page_misses == 1
    assert mem.stats.page_hits == 1


def test_page_hit_latency_matches_paper():
    mem = Rdram()
    mem.access(0x0, nbytes=128)
    hit = mem.access(0x40, nbytes=128)
    # 100 ns access + 128 B at 1.6 GB/s (80 ns)
    assert hit == ns(100) + ns(80)


def test_page_miss_latency_matches_paper():
    mem = Rdram()
    miss = mem.access(0x0, nbytes=128)
    assert miss == ns(122) + ns(80)


def test_different_pages_same_bank_conflict():
    config = RdramConfig(num_banks=2, page_size=2048)
    mem = Rdram(config)
    mem.access(0x0)               # page 0 -> bank 0
    mem.access(2 * 2048 * 1)      # page 2 -> bank 0, closes page 0
    third = mem.access(0x0)
    assert mem.stats.page_misses == 3
    assert third == pytest.approx(config.page_miss_ps + ns(80), rel=0.01)


def test_stream_is_bandwidth_limited():
    mem = Rdram()
    # 1.6 MB at 1.6 GB/s = 1 ms
    assert mem.stream(1_600_000) == pytest.approx(1e9, rel=0.001)


def test_stream_zero_bytes():
    assert Rdram().stream(0) == 0


def test_stream_negative_rejected():
    with pytest.raises(ValueError):
        Rdram().stream(-1)


def test_access_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        Rdram().access(0, nbytes=0)


def test_config_validation():
    with pytest.raises(ValueError):
        RdramConfig(bandwidth_bytes_per_s=0)
    with pytest.raises(ValueError):
        RdramConfig(page_hit_ps=ns(200), page_miss_ps=ns(100))


def test_bytes_transferred_accumulates():
    mem = Rdram()
    mem.access(0x0, nbytes=128)
    mem.stream(1000)
    assert mem.stats.bytes_transferred == 1128

"""Unit tests for the memory hierarchy's stall-time accounting."""

import pytest

from repro.mem import (
    MemoryHierarchy,
    build_host_hierarchy,
    build_switch_hierarchy,
)
from repro.sim import Clock

HOST_CLOCK = Clock(2_000_000_000)
SWITCH_CLOCK = Clock(500_000_000)


def test_host_hierarchy_geometry():
    hier = build_host_hierarchy(HOST_CLOCK)
    assert hier.l1d.config.size_bytes == 32 * 1024
    assert hier.l2.config.size_bytes == 512 * 1024
    assert hier.l2.config.line_size == 128
    assert hier.dtlb.config.entries == 64


def test_database_scaled_hierarchy():
    hier = build_host_hierarchy(HOST_CLOCK, scaled_for_database=True)
    assert hier.l1d.config.size_bytes == 8 * 1024
    assert hier.l2.config.size_bytes == 64 * 1024


def test_switch_hierarchy_geometry():
    hier = build_switch_hierarchy(SWITCH_CLOCK)
    assert hier.l1d.config.size_bytes == 1024
    assert hier.l1i.config.size_bytes == 4096
    assert hier.l2 is None
    assert hier.dtlb is None


def test_l1_hit_has_no_stall():
    hier = build_host_hierarchy(HOST_CLOCK)
    hier.load(0x1000)  # warm
    assert hier.load(0x1000) == 0


def test_l2_hit_stall_is_cheaper_than_memory():
    hier = build_host_hierarchy(HOST_CLOCK)
    hier.load(0x1000)          # fills L1 and L2 (cold: memory latency)
    # Evict from tiny L1 set by touching conflicting lines, keep L2 warm.
    cold = hier.load(0x1000 + hier.l1d.config.size_bytes)
    hier.load(0x1000 + 2 * hier.l1d.config.size_bytes)
    l2_hit = hier.load(0x1000)
    assert 0 < l2_hit < cold


def test_load_miss_charges_memory_latency():
    hier = build_host_hierarchy(HOST_CLOCK)
    stall = hier.load(0x5000)
    # At least the RDRAM page-miss latency.
    assert stall >= hier.memory.config.page_hit_ps


def test_store_miss_partially_overlapped():
    hier = build_host_hierarchy(HOST_CLOCK)
    load_stall = hier.load(0x10000)
    store_stall = hier.store(0x20000)
    assert store_stall < load_stall


def test_switch_store_miss_blocks_fully():
    hier = build_switch_hierarchy(SWITCH_CLOCK)
    load_stall = hier.load(0x10000)
    store_stall = hier.store(0x20000)
    # One outstanding request: stores stall like loads (same cold path).
    assert store_stall == pytest.approx(load_stall, rel=0.2)


def test_prefetch_never_stalls_but_warms():
    hier = build_host_hierarchy(HOST_CLOCK)
    hier.prefetch(0x9000)
    assert hier.total_stall_ps == 0
    assert hier.load(0x9000) == 0


def test_tlb_miss_adds_stall():
    hier = build_host_hierarchy(HOST_CLOCK)
    hier.load(0x0)
    base_tlb_stall = hier.tlb_stall_ps
    assert base_tlb_stall > 0  # cold TLB miss walked the page table
    hier.load(0x20)  # same page: no new TLB stall
    assert hier.tlb_stall_ps == base_tlb_stall


def test_ifetch_uses_instruction_cache():
    hier = build_host_hierarchy(HOST_CLOCK)
    hier.ifetch(0x40_0000)
    assert hier.l1i.stats.accesses == 1
    assert hier.l1d.stats.accesses >= 0  # page walk may touch L1D


def test_load_range_walks_lines():
    hier = build_host_hierarchy(HOST_CLOCK)
    hier.load_range(0, 256)
    assert hier.l1d.stats.accesses >= 8  # 256/32 lines


def test_total_stall_sums_components():
    hier = build_host_hierarchy(HOST_CLOCK)
    hier.load(0x0)
    hier.store(0x100000)
    hier.ifetch(0x200000)
    assert hier.total_stall_ps == (hier.load_stall_ps + hier.store_stall_ps
                                   + hier.ifetch_stall_ps + hier.tlb_stall_ps)


def test_reset_stats_clears_counters_keeps_contents():
    hier = build_host_hierarchy(HOST_CLOCK)
    hier.load(0x1000)
    hier.reset_stats()
    assert hier.total_stall_ps == 0
    assert hier.l1d.stats.accesses == 0
    assert hier.load(0x1000) == 0  # still cached


def test_sequential_scan_misses_at_line_granularity():
    hier = build_host_hierarchy(HOST_CLOCK)
    hier.load_range(0x100000, 4096)
    # 4 KB / 32 B L1 lines = 128 scan misses, plus one miss from the
    # page-table walk of the single TLB miss (its second ref hits).
    assert hier.l1d.stats.misses == 129
    # L2 fetches 128 B lines: 32 scan misses + 1 page-walk miss.
    assert hier.l2.stats.misses == 33


# ----------------------------------------------------------------------
# Batched fast path vs scalar reference path
# ----------------------------------------------------------------------
def _state(hier):
    """Every observable counter and the full cache/TLB/memory state."""
    state = {
        "load": hier.load_stall_ps, "store": hier.store_stall_ps,
        "ifetch": hier.ifetch_stall_ps, "tlb": hier.tlb_stall_ps,
    }
    for name in ("l1d", "l1i", "l2"):
        cache = getattr(hier, name)
        if cache is not None:
            state[name] = (vars(cache.stats), cache._sets)
    for name in ("dtlb", "itlb"):
        tlb = getattr(hier, name)
        if tlb is not None:
            state[name] = (vars(tlb.stats), list(tlb._pages))
    state["mem"] = (vars(hier.memory.stats), hier.memory._open_pages)
    return state


@pytest.mark.parametrize("build", [build_host_hierarchy,
                                   build_switch_hierarchy])
@pytest.mark.parametrize("write", [False, True])
def test_batched_range_matches_scalar(build, write):
    clock = HOST_CLOCK if build is build_host_hierarchy else SWITCH_CLOCK
    fast = build(clock)
    ref = build(clock)
    ref.batched = False
    op_fast = fast.store_range if write else fast.load_range
    op_ref = ref.store_range if write else ref.load_range
    # Unaligned starts, page-boundary straddles, re-scans, empty ranges.
    spans = [(0x100010, 5000), (0x100010, 5000), (0x200000, 32),
             (0x0FF0, 64), (0x300007, 0), (0x7FFE0, 100000)]
    for addr, nbytes in spans:
        assert op_fast(addr, nbytes) == op_ref(addr, nbytes)
        assert _state(fast) == _state(ref)


@pytest.mark.parametrize("stride", [4, 32, 100, 4096, 5000])
def test_batched_stride_matches_scalar(stride):
    fast = build_host_hierarchy(HOST_CLOCK)
    ref = build_host_hierarchy(HOST_CLOCK)
    ref.batched = False
    for addr, count in [(0x100013, 700), (0x100013, 700), (0x5000, 1)]:
        assert (fast.load_stride(addr, stride, count)
                == ref.load_stride(addr, stride, count))
        assert (fast.store_stride(addr, stride, count)
                == ref.store_stride(addr, stride, count))
        assert _state(fast) == _state(ref)


def test_stride_zero_count_is_noop():
    hier = build_host_hierarchy(HOST_CLOCK)
    assert hier.load_stride(0x1000, 100, 0) == 0
    assert hier.l1d.stats.accesses == 0

"""Unit and property tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import Cache, CacheConfig


def make_cache(size=1024, line=32, assoc=2, name="test"):
    return Cache(CacheConfig(name, size, line, assoc))


def test_config_geometry():
    config = CacheConfig("c", 32 * 1024, 32, 2)
    assert config.num_sets == 512


def test_config_rejects_bad_sizes():
    with pytest.raises(ValueError):
        CacheConfig("c", 0, 32, 2)
    with pytest.raises(ValueError):
        CacheConfig("c", 100, 32, 2)  # not divisible
    with pytest.raises(ValueError):
        CacheConfig("c", 1024, 24, 2)  # line not power of two


def test_cold_miss_then_hit():
    cache = make_cache()
    assert not cache.access(0x1000).hit
    assert cache.access(0x1000).hit


def test_same_line_different_offsets_hit():
    cache = make_cache(line=32)
    cache.access(0x1000)
    assert cache.access(0x101F).hit
    assert not cache.access(0x1020).hit


def test_lru_eviction_order():
    # 2-way: third distinct tag in a set evicts the least recently used.
    cache = make_cache(size=64, line=32, assoc=2)  # 1 set
    cache.access(0x0)    # A
    cache.access(0x20)   # B
    cache.access(0x0)    # touch A -> B is LRU
    result = cache.access(0x40)  # C evicts B
    assert not result.hit
    assert cache.contains(0x0)
    assert not cache.contains(0x20)
    assert cache.contains(0x40)


def test_dirty_eviction_reports_writeback():
    cache = make_cache(size=64, line=32, assoc=2)
    cache.access(0x0, write=True)
    cache.access(0x20)
    result = cache.access(0x40)  # evicts dirty line A
    assert result.writeback
    assert cache.stats.writebacks == 1


def test_clean_eviction_no_writeback():
    cache = make_cache(size=64, line=32, assoc=2)
    cache.access(0x0)
    cache.access(0x20)
    result = cache.access(0x40)
    assert not result.writeback


def test_write_hit_marks_dirty():
    cache = make_cache(size=64, line=32, assoc=2)
    cache.access(0x0)              # clean fill
    cache.access(0x0, write=True)  # dirty it
    cache.access(0x20)
    result = cache.access(0x40)    # evict A
    assert result.writeback


def test_touch_range_counts_misses():
    cache = make_cache(size=4096, line=32, assoc=2)
    assert cache.touch_range(0, 128) == 4
    assert cache.touch_range(0, 128) == 0


def test_touch_range_unaligned_start():
    cache = make_cache(size=4096, line=32, assoc=2)
    # 16..80 spans three 32-byte lines (0, 32, 64).
    assert cache.touch_range(16, 64) == 3


def test_touch_range_empty():
    cache = make_cache()
    assert cache.touch_range(0, 0) == 0


def test_flush_empties_cache():
    cache = make_cache()
    cache.access(0x0, write=True)
    cache.access(0x100)
    dirty = cache.flush()
    assert dirty == 1
    assert not cache.contains(0x0)
    assert not cache.contains(0x100)


def test_flush_reports_dirty_lines_as_writebacks():
    """A line dying by flush counts in the same writeback traffic
    counter as a line dying by eviction."""
    cache = make_cache(size=4096, line=32, assoc=2)
    cache.access(0x0, write=True)
    cache.access(0x40, write=True)
    cache.access(0x80)
    assert cache.stats.writebacks == 0
    assert cache.flush() == 2
    assert cache.stats.writebacks == 2
    # A second flush finds nothing dirty.
    assert cache.flush() == 0
    assert cache.stats.writebacks == 2


def test_flush_then_eviction_writebacks_accumulate():
    cache = make_cache(size=64, line=32, assoc=2)  # 1 set
    cache.access(0x0, write=True)
    cache.flush()
    cache.access(0x0, write=True)
    cache.access(0x20)
    cache.access(0x40)  # evicts dirty 0x0
    assert cache.stats.writebacks == 2


def test_single_set_geometry():
    """num_sets == 1: the whole cache is one LRU stack."""
    cache = make_cache(size=128, line=32, assoc=4)
    assert cache.config.num_sets == 1
    for addr in (0x0, 0x20, 0x40, 0x60):
        assert not cache.access(addr).hit
    for addr in (0x0, 0x20, 0x40, 0x60):
        assert cache.contains(addr)
    cache.access(0x0)                 # touch A -> LRU is 0x20
    assert not cache.access(0x80).hit  # evicts 0x20
    assert cache.contains(0x0)
    assert not cache.contains(0x20)
    assert cache.stats.evictions == 1


def test_single_set_range_walk():
    cache = make_cache(size=128, line=32, assoc=4)
    misses, writebacks = cache.access_range(0, 256, write=True)
    assert misses == 8
    # 8 lines through a 4-way single set: 4 dirty evictions.
    assert writebacks == 4
    assert cache.stats.evictions == 4


def test_assoc_1_direct_mapped():
    """assoc == 1: any set conflict evicts immediately."""
    cache = make_cache(size=64, line=32, assoc=1)
    assert cache.config.num_sets == 2
    assert not cache.access(0x0).hit
    assert cache.access(0x0).hit
    result = cache.access(0x40)  # same set as 0x0 (2 sets, 32 B lines)
    assert not result.hit
    assert not cache.contains(0x0)
    assert cache.contains(0x40)
    assert cache.stats.evictions == 1


def test_assoc_1_dirty_conflict_writes_back():
    cache = make_cache(size=64, line=32, assoc=1)
    cache.access(0x0, write=True)
    result = cache.access(0x40)
    assert result.writeback
    assert cache.stats.writebacks == 1


def test_assoc_1_range_matches_scalar():
    """access_range on a direct-mapped cache equals per-line accesses."""
    batched = make_cache(size=64, line=32, assoc=1)
    scalar = make_cache(size=64, line=32, assoc=1)
    for base in (0, 64, 0, 128):
        misses, writebacks = batched.access_range(base, 128, write=True)
        s_misses = s_writebacks = 0
        for addr in range(base, base + 128, 32):
            result = scalar.access(addr, write=True)
            s_misses += 0 if result.hit else 1
            s_writebacks += 1 if result.writeback else 0
        assert (misses, writebacks) == (s_misses, s_writebacks)
    assert vars(batched.stats) == vars(scalar.stats)
    assert batched._sets == scalar._sets


def test_stats_accumulate():
    cache = make_cache()
    cache.access(0x0)
    cache.access(0x0)
    cache.access(0x40)
    assert cache.stats.accesses == 3
    assert cache.stats.hits == 1
    assert cache.stats.misses == 2
    assert cache.stats.miss_rate == pytest.approx(2 / 3)


def test_working_set_fits_no_capacity_misses():
    # 1 KB cache, 32 B lines: a 512 B working set loops with only cold misses.
    cache = make_cache(size=1024, line=32, assoc=2)
    for _ in range(10):
        for addr in range(0, 512, 32):
            cache.access(addr)
    assert cache.stats.misses == 16  # cold only


def test_thrashing_working_set_always_misses():
    # Direct-mapped 64 B cache with two addresses mapping to the same set.
    cache = make_cache(size=32, line=32, assoc=1)
    for _ in range(5):
        cache.access(0x0)
        cache.access(0x20)
    assert cache.stats.hits == 0


@given(
    addrs=st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                   max_size=300),
)
@settings(max_examples=50, deadline=None)
def test_property_immediate_rereference_hits(addrs):
    """Any address accessed twice in a row must hit the second time."""
    cache = make_cache(size=2048, line=32, assoc=4)
    for addr in addrs:
        cache.access(addr)
        assert cache.access(addr).hit


@given(
    addrs=st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1,
                   max_size=500),
    writes=st.lists(st.booleans(), min_size=1, max_size=500),
)
@settings(max_examples=50, deadline=None)
def test_property_stats_invariants(addrs, writes):
    """hits + misses == accesses; ways never exceed associativity."""
    cache = make_cache(size=512, line=32, assoc=2)
    for addr, write in zip(addrs, writes):
        cache.access(addr, write=write)
    stats = cache.stats
    assert stats.hits + stats.misses == stats.accesses
    assert all(len(lines) <= 2 for lines in cache._sets)
    assert stats.writebacks <= stats.evictions


@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 18),
                      min_size=1, max_size=200))
@settings(max_examples=30, deadline=None)
def test_property_contains_matches_access_hit(addrs):
    """contains() must agree with what a subsequent access observes."""
    cache = make_cache(size=1024, line=64, assoc=2)
    for addr in addrs:
        resident = cache.contains(addr)
        assert cache.access(addr).hit == resident

"""Property tests for the RDRAM bank model and hierarchy invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import Rdram, RdramConfig, build_host_hierarchy
from repro.sim import Clock

HOST_CLOCK = Clock(2_000_000_000)


@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 26),
                      min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_property_rdram_latency_bounds(addrs):
    """Every access costs between page-hit and page-miss latency plus
    the burst transfer; hit/miss counts partition accesses."""
    mem = Rdram()
    burst = mem.stream(0)  # 0: just to touch API; recompute below
    for addr in addrs:
        latency = mem.access(addr, nbytes=128)
        assert latency >= mem.config.page_hit_ps
        assert latency <= mem.config.page_miss_ps + 200_000
    stats = mem.stats
    assert stats.page_hits + stats.page_misses == stats.accesses
    assert stats.accesses == len(addrs)


@given(stride=st.sampled_from([64, 128, 256, 2048, 4096]))
@settings(max_examples=10, deadline=None)
def test_property_sequential_hits_within_page(stride):
    """Strides inside a 2 KB page hit after the first access; page-sized
    strides always miss."""
    mem = Rdram(RdramConfig(num_banks=1))
    for i in range(16):
        mem.access(i * stride, nbytes=64)
    if stride < 2048:
        assert mem.stats.page_hit_rate > 0.4
    else:
        assert mem.stats.page_hits == 0


@given(ops=st.lists(st.tuples(st.integers(min_value=0, max_value=1 << 22),
                              st.booleans()),
                    min_size=1, max_size=300))
@settings(max_examples=30, deadline=None)
def test_property_hierarchy_stall_accounting_consistent(ops):
    """Total stall always equals the sum of its buckets and never
    decreases; warm re-access of the last line is free."""
    hier = build_host_hierarchy(HOST_CLOCK)
    previous_total = 0
    for addr, write in ops:
        if write:
            hier.store(addr)
        else:
            hier.load(addr)
        total = hier.total_stall_ps
        assert total >= previous_total
        assert total == (hier.load_stall_ps + hier.store_stall_ps
                         + hier.ifetch_stall_ps + hier.tlb_stall_ps)
        previous_total = total
        # Immediate re-load of the same address is always free.
        assert hier.load(addr) == 0
        previous_total = hier.total_stall_ps


@given(addr=st.integers(min_value=0, max_value=1 << 24))
@settings(max_examples=50, deadline=None)
def test_property_prefetch_then_load_is_free(addr):
    hier = build_host_hierarchy(HOST_CLOCK)
    hier.prefetch(addr)
    assert hier.load(addr) == 0
    assert hier.total_stall_ps == 0

"""The streaming quantile estimator behind the service-traffic layer.

Three contracts matter: small samples are *exact* (numpy.percentile's
linear interpolation, reimplemented below as an independent reference),
large streams stay within the declared relative-error bound after
collapsing to log buckets, and merging per-stream estimators is
equivalent to having fed one estimator everything.
"""

import math
import random

import pytest

from repro.metrics import QuantileEstimator


def reference_quantile(values, q):
    """numpy.percentile(values, 100*q, method="linear"), dependency-free."""
    ordered = sorted(values)
    h = (len(ordered) - 1) * q
    lo = math.floor(h)
    hi = math.ceil(h)
    if lo == hi:
        return ordered[int(h)]
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (h - lo)


# ----------------------------------------------------------------------
# Exact regime
# ----------------------------------------------------------------------
@pytest.mark.parametrize("q", [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0])
def test_small_samples_match_linear_interpolation_exactly(q):
    rng = random.Random(11)
    values = [rng.uniform(0.0, 1000.0) for _ in range(101)]
    est = QuantileEstimator()
    est.extend(values)
    assert est.is_exact
    assert est.quantile(q) == reference_quantile(values, q)


def test_exact_handles_duplicates_and_zeros():
    values = [0.0, 0.0, 1.0, 1.0, 1.0, 5.0]
    est = QuantileEstimator()
    est.extend(values)
    for q in (0.0, 0.2, 0.5, 0.8, 1.0):
        assert est.quantile(q) == reference_quantile(values, q)
    assert est.minimum == 0.0 and est.maximum == 5.0


def test_single_sample_every_quantile_is_it():
    est = QuantileEstimator()
    est.add(42.0)
    assert est.quantile(0.0) == est.quantile(0.5) == est.quantile(1.0) == 42.0


def test_empty_returns_none_and_summary_is_count_only():
    est = QuantileEstimator()
    assert est.quantile(0.5) is None
    assert est.mean is None
    assert est.summary() == {"count": 0.0}


def test_rejects_negative_and_nan():
    est = QuantileEstimator()
    with pytest.raises(ValueError):
        est.add(-1.0)
    with pytest.raises(ValueError):
        est.add(float("nan"))
    with pytest.raises(ValueError):
        est.quantile(1.5)


# ----------------------------------------------------------------------
# Sketch regime: bounded relative error on large streams
# ----------------------------------------------------------------------
def test_large_stream_relative_error_is_bounded():
    eps = 0.01
    rng = random.Random(3)
    # Heavy-tailed, like latencies: several orders of magnitude.
    values = [math.exp(rng.gauss(2.0, 1.5)) for _ in range(20_000)]
    est = QuantileEstimator(eps=eps, exact_limit=512)
    est.extend(values)
    assert not est.is_exact
    for q in (0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999):
        truth = reference_quantile(values, q)
        got = est.quantile(q)
        assert abs(got - truth) <= 2.0 * eps * truth, (q, got, truth)


def test_sketch_extremes_clamp_to_observed_range():
    est = QuantileEstimator(exact_limit=8)
    values = [float(i) for i in range(1, 1001)]
    est.extend(values)
    assert est.quantile(0.0) >= est.minimum == 1.0
    assert est.quantile(1.0) <= est.maximum == 1000.0


def test_count_mean_total_survive_collapse():
    est = QuantileEstimator(exact_limit=4)
    est.extend([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    assert est.count == 6
    assert est.total == pytest.approx(21.0)
    assert est.mean == pytest.approx(3.5)


# ----------------------------------------------------------------------
# Merging across streams
# ----------------------------------------------------------------------
def test_merge_of_exact_estimators_stays_exact_and_correct():
    rng = random.Random(5)
    a_vals = [rng.uniform(0, 100) for _ in range(50)]
    b_vals = [rng.uniform(0, 100) for _ in range(60)]
    a, b = QuantileEstimator(), QuantileEstimator()
    a.extend(a_vals)
    b.extend(b_vals)
    merged = QuantileEstimator.merged([a, b])
    assert merged.is_exact
    everything = a_vals + b_vals
    for q in (0.0, 0.5, 0.95, 0.99, 1.0):
        assert merged.quantile(q) == reference_quantile(everything, q)


def test_merge_equals_single_estimator_fed_everything():
    rng = random.Random(9)
    streams = [[math.exp(rng.gauss(1.0, 1.0)) for _ in range(2_000)]
               for _ in range(8)]
    parts = []
    for values in streams:
        est = QuantileEstimator(exact_limit=128)
        est.extend(values)
        parts.append(est)
    merged = QuantileEstimator.merged(parts, exact_limit=128)
    union = QuantileEstimator(exact_limit=128)
    for values in streams:
        union.extend(values)
    assert merged.count == union.count == 16_000
    assert merged.total == pytest.approx(union.total)
    # Same eps => identical bucket boundaries => identical quantiles.
    for q in (0.1, 0.5, 0.9, 0.99):
        assert merged.quantile(q) == union.quantile(q)


def test_merge_is_order_independent():
    rng = random.Random(13)
    streams = [[rng.uniform(0, 10) for _ in range(700)] for _ in range(4)]
    parts = []
    for values in streams:
        est = QuantileEstimator(exact_limit=64)
        est.extend(values)
        parts.append(est)
    forward = QuantileEstimator.merged(parts, exact_limit=64)
    backward = QuantileEstimator.merged(parts[::-1], exact_limit=64)
    for q in (0.25, 0.5, 0.95):
        assert forward.quantile(q) == backward.quantile(q)


def test_merge_rejects_mismatched_eps():
    a = QuantileEstimator(eps=0.01)
    b = QuantileEstimator(eps=0.02)
    with pytest.raises(ValueError):
        a.merge(b)


def test_summary_shape():
    est = QuantileEstimator()
    est.extend([1.0, 2.0, 3.0, 4.0])
    summary = est.summary((50.0, 95.0, 99.0))
    assert set(summary) == {"count", "mean", "p50", "p95", "p99", "max"}
    assert summary["count"] == 4.0
    assert summary["max"] == 4.0

"""Golden-output tests for the figure renderers.

Exact expected text pins the table layout — the harness output is part
of the public interface (EXPERIMENTS.md quotes it).
"""

from repro.cpu import Breakdown
from repro.metrics import (
    CaseResult,
    BenchmarkResult,
    breakdown_table,
    performance_table,
    render_table,
)


def golden_result():
    def case(label, exec_ps, busy, stall, bytes_in, switch=False):
        return CaseResult(
            label=label, exec_ps=exec_ps,
            host=Breakdown(f"{label}-host", exec_ps, busy, stall),
            switch_cpus=([Breakdown(f"{label}-sp", exec_ps, busy // 2, 0)]
                         if switch else []),
            host_bytes_in=bytes_in)

    return BenchmarkResult(name="demo", cases={
        "normal": case("normal", 2_000_000_000, 500_000_000,
                       500_000_000, 1000),
        "normal+pref": case("normal+pref", 1_000_000_000, 500_000_000,
                            250_000_000, 1000),
        "active": case("active", 1_000_000_000, 100_000_000, 0, 250,
                       switch=True),
        "active+pref": case("active+pref", 500_000_000, 100_000_000, 0,
                            250, switch=True),
    })


def test_performance_table_golden():
    expected = """\
demo: performance (Figure style)
       case  norm. time  host util  norm. traffic  exec (ms)
-----------  ----------  ---------  -------------  ---------
     normal       1.000      0.500          1.000       2.00
normal+pref       0.500      0.750          1.000       1.00
     active       0.500      0.100          0.250       1.00
active+pref       0.250      0.200          0.250       0.50"""
    assert performance_table(golden_result()) == expected


def test_breakdown_table_golden():
    expected = """\
demo: execution-time breakdown (Figure style)
   cpu   busy  cache stall   idle
------  -----  -----------  -----
  n-HP  25.0%        25.0%  50.0%
n+p-HP  50.0%        25.0%  25.0%
  a-HP  10.0%         0.0%  90.0%
  a-SP   5.0%         0.0%  95.0%
a+p-HP  20.0%         0.0%  80.0%
a+p-SP  10.0%         0.0%  90.0%"""
    assert breakdown_table(golden_result()) == expected


def test_render_table_golden():
    expected = """\
 a   bb
--  ---
 1    2
33  444"""
    assert render_table(["a", "bb"], [[1, 2], [33, 444]]) == expected


def test_bar_chart_golden():
    from repro.metrics import bar_chart
    expected = """\
demo
 fast  ########## 0.500
 slow  #################### 1.000
empty  | 0.000"""
    actual = bar_chart("demo", [("fast", 0.5), ("slow", 1.0),
                                ("empty", 0.0)], width=20)
    assert actual == expected


def test_bar_chart_ceiling_clamps():
    from repro.metrics import bar_chart
    text = bar_chart("x", [("over", 2.0)], width=10, ceiling=1.0)
    assert "##########" in text
    assert "2.000" in text


def test_bar_chart_validation():
    import pytest
    from repro.metrics import bar_chart
    with pytest.raises(ValueError):
        bar_chart("x", [("a", 1.0)], width=0)


def test_performance_bars_contains_all_metrics():
    from repro.metrics import performance_bars
    text = performance_bars(golden_result())
    assert "execution time (normalized)" in text
    assert "host utilization" in text
    assert "host I/O traffic (normalized)" in text
    assert text.count("normal+pref") == 3

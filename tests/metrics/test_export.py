"""Tests for CSV export."""

import csv
import io

import pytest

from repro.metrics import (
    benchmark_result_rows,
    benchmark_result_to_csv,
    rows_to_csv,
)

import sys, pathlib
sys.path.insert(0, str(pathlib.Path(__file__).parent))
from test_report_golden import golden_result


def test_rows_cover_all_cases():
    rows = list(benchmark_result_rows(golden_result()))
    assert {row["case"] for row in rows} == {
        "normal", "normal+pref", "active", "active+pref"}
    normal = next(r for r in rows if r["case"] == "normal")
    assert normal["normalized_time"] == 1.0
    assert normal["switch_busy_frac"] == ""


def test_csv_parses_back():
    text = benchmark_result_to_csv(golden_result())
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert len(parsed) == 4
    active = next(r for r in parsed if r["case"] == "active")
    assert float(active["normalized_traffic"]) == 0.25


def test_csv_writes_to_file(tmp_path):
    out = tmp_path / "result.csv"
    benchmark_result_to_csv(golden_result(), path=str(out))
    assert out.read_text().startswith("benchmark,case,")


def test_rows_to_csv_roundtrip(tmp_path):
    rows = [{"nodes": 2, "speedup": 0.98}, {"nodes": 128, "speedup": 5.0}]
    text = rows_to_csv(rows)
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert parsed[1]["nodes"] == "128"
    out = tmp_path / "sweep.csv"
    rows_to_csv(rows, path=str(out))
    assert out.exists()


def test_rows_to_csv_validation():
    with pytest.raises(ValueError):
        rows_to_csv([])
    with pytest.raises(ValueError):
        rows_to_csv([{"a": 1}, {"b": 2}])


def test_sweep_export_from_real_experiment():
    from repro.apps.reduction import reduction_sweep, REDUCE_TO_ONE
    rows = reduction_sweep(REDUCE_TO_ONE, node_counts=(2, 8))
    text = rows_to_csv(rows)
    assert "speedup" in text.splitlines()[0]
    assert len(text.splitlines()) == 3

"""Unit and property tests for time-weighted statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.sampling import BusyTracker, TimeWeighted
from repro.sim import Environment


def test_constant_value_mean_is_itself():
    env = Environment()
    signal = TimeWeighted(env, initial=3.0)
    env.timeout(1000)
    env.run()
    assert signal.mean() == pytest.approx(3.0)


def test_step_change_weights_by_duration():
    env = Environment()
    signal = TimeWeighted(env, initial=0.0)

    def driver(env):
        yield env.timeout(900)
        signal.set(10.0)
        yield env.timeout(100)

    env.process(driver(env))
    env.run()
    # 0 for 900 ps, 10 for 100 ps -> mean 1.0.
    assert signal.mean() == pytest.approx(1.0)


def test_add_tracks_queue_depth():
    env = Environment()
    depth = TimeWeighted(env)

    def driver(env):
        depth.add(+1)
        yield env.timeout(500)
        depth.add(+1)
        yield env.timeout(500)
        depth.add(-2)
        yield env.timeout(1000)

    env.process(driver(env))
    env.run()
    # 1 for 500, 2 for 500, 0 for 1000 -> 1500/2000 = 0.75.
    assert depth.mean() == pytest.approx(0.75)
    assert depth.maximum == 2
    assert depth.minimum == 0


def test_mean_at_zero_span_returns_value():
    env = Environment()
    signal = TimeWeighted(env, initial=7.0)
    assert signal.mean() == 7.0


def test_mean_before_last_change_raises():
    """History before the last set() is not retained; asking for it
    must fail loudly rather than integrate a negative open segment."""
    env = Environment()
    signal = TimeWeighted(env, initial=2.0)

    def driver(env):
        yield env.timeout(400)
        signal.set(5.0)
        yield env.timeout(100)

    env.process(driver(env))
    env.run()
    with pytest.raises(ValueError):
        signal.mean(until_ps=399)
    # At exactly the last change it is well defined: 2.0 over [0,400).
    assert signal.mean(until_ps=400) == pytest.approx(2.0)


def test_mean_beyond_now_extrapolates_current_value():
    env = Environment()
    signal = TimeWeighted(env, initial=4.0)

    def driver(env):
        yield env.timeout(100)

    env.process(driver(env))
    env.run()
    # 4.0 held for the whole (extended) span.
    assert signal.mean(until_ps=1000) == pytest.approx(4.0)


def test_busy_tracker_utilization():
    env = Environment()
    tracker = BusyTracker(env)

    def driver(env):
        tracker.enter()
        yield env.timeout(250)
        tracker.exit()
        yield env.timeout(750)

    env.process(driver(env))
    env.run()
    assert tracker.utilization() == pytest.approx(0.25)


def test_busy_tracker_nests():
    env = Environment()
    tracker = BusyTracker(env)

    def driver(env):
        tracker.enter()
        tracker.enter()
        yield env.timeout(100)
        tracker.exit()
        assert tracker.busy
        yield env.timeout(100)
        tracker.exit()
        assert not tracker.busy
        yield env.timeout(200)

    env.process(driver(env))
    env.run()
    assert tracker.utilization() == pytest.approx(0.5)


def test_busy_tracker_unbalanced_exit_raises():
    env = Environment()
    tracker = BusyTracker(env)
    with pytest.raises(ValueError):
        tracker.exit()


@given(segments=st.lists(
    st.tuples(st.floats(min_value=-100, max_value=100,
                        allow_nan=False, allow_infinity=False),
              st.integers(min_value=1, max_value=10_000)),
    min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_property_mean_matches_manual_integration(segments):
    """The reported mean equals a hand-computed weighted average."""
    env = Environment()
    signal = TimeWeighted(env, initial=0.0)

    def driver(env):
        for value, duration in segments:
            signal.set(value)
            yield env.timeout(duration)

    env.process(driver(env))
    env.run()
    total = sum(d for _, d in segments)
    expected = sum(v * d for v, d in segments) / total
    assert signal.mean() == pytest.approx(expected, rel=1e-9, abs=1e-9)


@given(segments=st.lists(st.integers(min_value=1, max_value=1000),
                         min_size=2, max_size=20))
@settings(max_examples=40, deadline=None)
def test_property_utilization_bounded(segments):
    """Utilization of alternating busy/idle periods stays in [0, 1]."""
    env = Environment()
    tracker = BusyTracker(env)

    def driver(env):
        for index, duration in enumerate(segments):
            if index % 2 == 0:
                tracker.enter()
            yield env.timeout(duration)
            if index % 2 == 0:
                tracker.exit()

    env.process(driver(env))
    env.run()
    busy = sum(d for i, d in enumerate(segments) if i % 2 == 0)
    total = sum(segments)
    assert tracker.utilization() == pytest.approx(busy / total)

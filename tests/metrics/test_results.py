"""Unit tests for result containers and figure rendering."""

import pytest

from repro.cpu import Breakdown
from repro.metrics import (
    BenchmarkResult,
    CaseResult,
    breakdown_table,
    comparison_table,
    performance_table,
    render_table,
)


def make_result():
    def case(label, exec_ps, busy, stall, bytes_in, switch=False):
        return CaseResult(
            label=label,
            exec_ps=exec_ps,
            host=Breakdown(f"{label}-host", exec_ps, busy, stall),
            switch_cpus=([Breakdown(f"{label}-sp", exec_ps, busy // 2, 0)]
                         if switch else []),
            host_bytes_in=bytes_in,
        )

    return BenchmarkResult(name="demo", cases={
        "normal": case("normal", 1000, 300, 100, 10_000),
        "normal+pref": case("normal+pref", 800, 300, 100, 10_000),
        "active": case("active", 700, 50, 10, 2_500, switch=True),
        "active+pref": case("active+pref", 600, 50, 10, 2_500, switch=True),
    })


def test_normalized_time():
    result = make_result()
    assert result.normalized_time("normal") == 1.0
    assert result.normalized_time("active+pref") == pytest.approx(0.6)


def test_normalized_traffic():
    result = make_result()
    assert result.normalized_traffic("active") == pytest.approx(0.25)


def test_speedups():
    result = make_result()
    assert result.active_speedup == pytest.approx(1000 / 700)
    assert result.active_pref_speedup == pytest.approx(800 / 600)


def test_utilization():
    result = make_result()
    assert result.utilization("normal") == pytest.approx(0.4)


def test_traffic_totals_in_and_out():
    case = CaseResult(label="x", exec_ps=1,
                      host=Breakdown("h", 1, 0, 0),
                      host_bytes_in=10, host_bytes_out=5)
    assert case.host_traffic_bytes == 15


def test_breakdown_rows_use_paper_prefixes():
    result = make_result()
    rows = result.case("active+pref").breakdown_rows()
    assert rows[0][0] == "a+p-HP"
    assert rows[1][0] == "a+p-SP"
    assert result.case("normal").breakdown_rows()[0][0] == "n-HP"


def test_summary_has_all_metrics():
    summary = make_result().summary()
    assert set(summary) == {"normal", "normal+pref", "active", "active+pref"}
    assert set(summary["normal"]) == {
        "normalized_time", "host_utilization", "normalized_traffic"}


def test_performance_table_renders_all_cases():
    text = performance_table(make_result())
    for label in ("normal", "normal+pref", "active", "active+pref"):
        assert label in text


def test_breakdown_table_includes_switch_rows():
    text = breakdown_table(make_result())
    assert "a-SP" in text
    assert "n-HP" in text
    assert "n-SP" not in text


def test_render_table_alignment():
    text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert len(set(map(len, lines))) == 1  # all rows equal width


def test_comparison_table_handles_missing_paper_value():
    text = comparison_table("x", [("m1", 1.5, 2.0), ("m2", 3.0, None)])
    assert "m1" in text
    assert "-" in text


def test_zero_traffic_baseline():
    result = make_result()
    for case in result.cases.values():
        case.host_bytes_in = 0
        case.host_bytes_out = 0
    assert result.normalized_traffic("active") == 0.0

"""Functional-kernel correctness tests (the apps' non-timing halves)."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.grep import LiteralMatcher
from repro.apps.md5 import md5_digest, md5_interleaved
from repro.apps.tar import build_archive, parse_archive, ustar_header
from repro.workloads import files


# ----------------------------------------------------------------------
# Grep's KMP automaton
# ----------------------------------------------------------------------
def test_matcher_finds_single_match():
    matcher = LiteralMatcher(b"bear")
    state, ends = matcher.feed(b"the bear sleeps")
    assert len(ends) == 1


def test_matcher_counts_overlapping():
    matcher = LiteralMatcher(b"aa")
    _, ends = matcher.feed(b"aaaa")
    assert len(ends) == 3  # positions 2,3,4


def test_matcher_resumes_across_chunks():
    matcher = LiteralMatcher(b"Big Red Bear")
    state, ends1 = matcher.feed(b"xxx Big Re")
    state, ends2 = matcher.feed(b"d Bear yyy", state)
    assert not ends1
    assert len(ends2) == 1


def test_matcher_rejects_empty_pattern():
    with pytest.raises(ValueError):
        LiteralMatcher(b"")


@given(haystack=st.binary(max_size=400),
       needle=st.binary(min_size=1, max_size=6),
       split=st.integers(min_value=0, max_value=400))
@settings(max_examples=120, deadline=None)
def test_property_matcher_equals_count_even_when_split(haystack, needle,
                                                       split):
    """Streamed matching across any split equals an overlap-count oracle."""
    matcher = LiteralMatcher(needle)
    split = min(split, len(haystack))
    state, ends1 = matcher.feed(haystack[:split])
    _, ends2 = matcher.feed(haystack[split:], state)
    # Oracle: count occurrences including overlaps.
    count = 0
    start = 0
    while True:
        index = haystack.find(needle, start)
        if index < 0:
            break
        count += 1
        start = index + 1
    assert len(ends1) + len(ends2) == count


# ----------------------------------------------------------------------
# MD5
# ----------------------------------------------------------------------
@pytest.mark.parametrize("data", [
    b"",
    b"a",
    b"abc",
    b"message digest",
    b"a" * 55,   # padding boundary
    b"a" * 56,
    b"a" * 64,
    b"a" * 1000,
])
def test_md5_matches_hashlib(data):
    assert md5_digest(data) == hashlib.md5(data).digest()


@given(data=st.binary(max_size=500))
@settings(max_examples=60, deadline=None)
def test_property_md5_matches_hashlib(data):
    assert md5_digest(data) == hashlib.md5(data).digest()


def test_md5_interleaved_single_chain_is_digest_of_digest():
    data = bytes(range(256)) * 10
    expected = hashlib.md5(hashlib.md5(data).digest()).digest()
    assert md5_interleaved(data, chains=1, block_bytes=1 << 20) == expected


def test_md5_interleaved_chains_partition_blocks():
    data = bytes(range(200)) * 40
    block = 512
    chunks = [data[i:i + block] for i in range(0, len(data), block)]
    chains = [b"".join(chunks[k::4]) for k in range(4)]
    expected = hashlib.md5(
        b"".join(hashlib.md5(c).digest() for c in chains)).digest()
    assert md5_interleaved(data, chains=4, block_bytes=block) == expected


def test_md5_interleaved_validates_chains():
    with pytest.raises(ValueError):
        md5_interleaved(b"x", chains=0)


# ----------------------------------------------------------------------
# USTAR
# ----------------------------------------------------------------------
def test_ustar_header_is_512_bytes():
    header = ustar_header(files.FileSpec(name="a.txt", size=100))
    assert len(header) == 512
    assert header[257:262] == b"ustar"


def test_ustar_checksum_is_valid():
    header = ustar_header(files.FileSpec(name="a.txt", size=100))
    stored = int(header[148:154], 8)
    recomputed = sum(header[:148]) + 8 * ord(" ") + sum(header[156:])
    assert stored == recomputed


def test_archive_roundtrip():
    specs = files.generate_fileset(total_bytes=128 * 1024)
    archive = build_archive(specs)
    assert parse_archive(archive) == [(f.name, f.size) for f in specs]


def test_archive_block_aligned():
    specs = [files.FileSpec(name="odd.bin", size=777)]
    archive = build_archive(specs)
    assert len(archive) % 512 == 0


def test_archive_ends_with_two_zero_blocks():
    archive = build_archive([files.FileSpec(name="x", size=10)])
    assert archive[-1024:] == b"\x00" * 1024


def test_ustar_rejects_long_names():
    with pytest.raises(ValueError):
        ustar_header(files.FileSpec(name="n" * 101, size=1))

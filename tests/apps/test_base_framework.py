"""Unit tests for the StreamApp framework itself."""

import pytest

from repro.apps.base import BlockWork, StreamApp, finalize_case, run_four_cases
from repro.cluster import ClusterConfig, System


class TinyApp(StreamApp):
    """A minimal two-block app used to probe the framework."""

    name = "tiny"
    request_bytes = 64 * 1024

    def prepare(self):
        for _ in range(2):
            self.blocks.append(BlockWork(
                nbytes=self.request_bytes,
                host_cycles=10_000,
                handler_cycles=8_000,
                out_bytes=1024,
                active_host_cycles=500,
            ))


def test_blockwork_defaults():
    work = BlockWork(nbytes=100)
    assert work.host_cycles == 0.0
    assert work.out_bytes == 0
    assert work.host_stall_fn is None


def test_stream_app_requires_blocks():
    class Empty(StreamApp):
        def prepare(self):
            pass

    with pytest.raises(ValueError):
        Empty()


def test_stream_app_rejects_bad_scale():
    with pytest.raises(ValueError):
        TinyApp(scale=0)
    with pytest.raises(ValueError):
        TinyApp(scale=-1)


def test_total_bytes_sums_blocks():
    app = TinyApp()
    assert app.total_bytes == 2 * 64 * 1024


def test_run_four_cases_produces_all_labels():
    result = run_four_cases(lambda: TinyApp())
    assert set(result.cases) == {"normal", "normal+pref", "active",
                                 "active+pref"}
    assert result.name == "tiny"


def test_four_cases_traffic_reflects_out_bytes():
    result = run_four_cases(lambda: TinyApp())
    # Active: only out_bytes reach the host.
    assert result.case("active").host_bytes_in == 2 * 1024
    assert result.case("normal").host_bytes_in == 2 * 64 * 1024


def test_active_case_has_switch_breakdowns():
    result = run_four_cases(lambda: TinyApp())
    assert result.case("active").switch_cpus
    assert result.case("normal").switch_cpus == []


def test_run_case_respects_config():
    app = TinyApp()
    normal = app.run_case(ClusterConfig().with_case(False, False))
    pref = app.run_case(ClusterConfig().with_case(False, True))
    assert normal.label == "normal"
    assert pref.label == "normal+pref"
    assert pref.exec_ps <= normal.exec_ps


def test_finalize_case_zero_length_run():
    system = System(ClusterConfig())
    case = finalize_case(system, "normal")
    assert case.exec_ps == 0
    assert case.host.utilization == 0.0


def test_stall_fns_receive_hierarchy():
    seen = {}

    class Probing(TinyApp):
        def prepare(self):
            def stall_fn(hierarchy):
                seen["hierarchy"] = hierarchy
                return 0

            self.blocks.append(BlockWork(
                nbytes=self.request_bytes,
                host_cycles=1,
                host_stall_fn=stall_fn,
            ))

    app = Probing()
    app.run_case(ClusterConfig().with_case(False, False))
    from repro.mem import MemoryHierarchy
    assert isinstance(seen["hierarchy"], MemoryHierarchy)

"""Tests for collective reductions (Table 2, Figures 15/16)."""

import pytest

from repro.apps.reduction import (
    DISTRIBUTED,
    REDUCE_TO_ALL,
    REDUCE_TO_ONE,
    VECTOR_BYTES,
    _make_vectors,
    _oracle,
    reduction_sweep,
    run_reduction_point,
)


def test_vector_size_is_paper_parameter():
    assert VECTOR_BYTES == 512


# ----------------------------------------------------------------------
# Functional correctness (Table 2 semantics) — the result vectors are
# checked against the oracle inside run_reduction_point.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("p", [2, 8, 16])
@pytest.mark.parametrize("active", [False, True])
def test_reduce_to_one_result_correct(p, active):
    result = run_reduction_point(p, REDUCE_TO_ONE, active=active)
    vectors = _make_vectors(p)
    assert list(result.result_vector) == _oracle(vectors)


@pytest.mark.parametrize("active", [False, True])
def test_reduce_to_all_result_correct(active):
    result = run_reduction_point(8, REDUCE_TO_ALL, active=active)
    vectors = _make_vectors(8)
    assert list(result.result_vector) == _oracle(vectors)


@pytest.mark.parametrize("active", [False, True])
def test_distributed_reduce_completes(active):
    result = run_reduction_point(8, DISTRIBUTED, active=active)
    assert result.latency_ps > 0


# ----------------------------------------------------------------------
# Latency shapes (Figures 15/16)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", [REDUCE_TO_ONE, DISTRIBUTED])
def test_active_speedup_grows_with_nodes(mode):
    rows = reduction_sweep(mode, node_counts=(4, 16, 64))
    speedups = [row["speedup"] for row in rows]
    assert speedups == sorted(speedups)
    assert speedups[-1] > 2.0


def test_active_beats_normal_at_scale():
    row = reduction_sweep(REDUCE_TO_ONE, node_counts=(64,))[0]
    assert row["speedup"] > 3.0


def test_normal_latency_grows_logarithmically():
    rows = reduction_sweep(REDUCE_TO_ONE, node_counts=(4, 16, 64))
    latencies = [row["normal_us"] for row in rows]
    # log2: 2 -> 4 -> 6 rounds; ratios well below linear scaling (x4).
    assert latencies[1] / latencies[0] < 3.0
    assert latencies[2] / latencies[1] < 2.0


def test_active_latency_nearly_flat():
    rows = reduction_sweep(REDUCE_TO_ONE, node_counts=(8, 64))
    assert rows[1]["active_us"] < rows[0]["active_us"] * 2.0


def test_small_system_no_benefit():
    # With 2 nodes the MST does one round; the switch path adds hops.
    row = reduction_sweep(REDUCE_TO_ONE, node_counts=(2,))[0]
    assert row["speedup"] == pytest.approx(1.0, abs=0.25)


# ----------------------------------------------------------------------
# Tree fabric sanity (integration through the real active switches)
# ----------------------------------------------------------------------
def test_large_reduction_uses_switch_tree():
    from repro.apps.reduction import _build_tree
    tree = _build_tree(128)
    assert len(tree.levels[0]) == 16       # 16 leaf switches
    assert tree.depth == 3                 # leaves -> level2 -> root
    assert tree.root.fan_in == 2
    assert sum(leaf.fan_in for leaf in tree.levels[0]) == 128


def test_single_leaf_reduction():
    result = run_reduction_point(8, REDUCE_TO_ONE, active=True)
    vectors = _make_vectors(8)
    assert list(result.result_vector) == _oracle(vectors)


def test_reduce_to_all_speedup_monotone():
    """The tree broadcast keeps reduce-to-all scaling with node count."""
    rows = reduction_sweep(REDUCE_TO_ALL, node_counts=(8, 32, 128))
    speedups = [row["speedup"] for row in rows]
    assert speedups == sorted(speedups)
    assert speedups[-1] > 5.0


def test_reduce_to_all_every_host_gets_oracle_result():
    from repro.apps.reduction import _build_tree, _make_vectors, _oracle
    from repro.apps.reduction import run_active_reduction
    vectors = _make_vectors(16)
    tree = _build_tree(16)
    received = {}

    env = tree.env
    from repro.apps.reduction import _install_handlers, ActiveHeader
    from repro.apps.reduction import H_REDUCE, VECTOR_BYTES
    done = {}
    _install_handlers(tree, REDUCE_TO_ALL, done)

    def sender(i):
        host = tree.hosts[i]
        leaf = tree.leaf_of(host)
        slot = leaf.hosts.index(host)
        yield from host.hca.send(
            leaf.name, VECTOR_BYTES,
            active=ActiveHeader(handler_id=H_REDUCE,
                                address=slot * VECTOR_BYTES),
            payload=list(vectors[i]))

    def receiver(i):
        host = tree.hosts[i]
        message = yield from host.hca.poll_receive()
        received[i] = message.payload

    procs = [env.process(sender(i)) for i in range(16)]
    procs += [env.process(receiver(i)) for i in range(16)]
    env.run(until=env.all_of(procs))
    oracle = _oracle(vectors)
    assert len(received) == 16
    for i in range(16):
        assert list(received[i]) == oracle


@pytest.mark.parametrize("vector_bytes", [128, 1024, 4096])
def test_multi_region_vectors_still_correct(vector_bytes):
    """Vectors spanning several ATB regions reduce correctly (exercises
    the conflict-backpressure path)."""
    result = run_reduction_point(8, REDUCE_TO_ONE, active=True,
                                 vector_bytes=vector_bytes)
    vectors = _make_vectors(8, vector_bytes=vector_bytes)
    assert list(result.result_vector) == _oracle(vectors)


def test_vector_size_sweep_speedup_decays():
    from repro.apps.reduction import vector_size_sweep
    rows = vector_size_sweep(num_hosts=16, sizes=(128, 2048))
    assert rows[0]["speedup"] > rows[1]["speedup"]

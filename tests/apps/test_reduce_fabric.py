"""End-to-end tests for ``repro.run("reduce", ...)``.

The acceptance bar for the scale-out layer: a 64-host two-level
fat-tree run with per-level aggregation completes through the unified
front door and the in-network result is bit-identical to the host-only
computation (checked against the oracle inside ``run_case``; the cases
also agree on the derived sums below).
"""

import pytest

import repro
from repro.apps.reduce_fabric import FabricReduceApp


def test_repro_run_64_host_fat_tree_per_level():
    result = repro.run("reduce", topology="fat_tree", hosts=64,
                       placement="per_level", cases=("normal", "active"))
    normal, active = result.cases["normal"], result.cases["active"]
    # In-network aggregation wins and moves fewer bytes through host 0.
    assert active.exec_ps < normal.exec_ps
    assert active.host_traffic_bytes < normal.host_traffic_bytes
    # Per-level counters surfaced in the result.
    assert active.extra["fabric.level0.combines"] == 64.0
    assert active.extra["fabric.level1.combines"] == 8.0
    assert active.extra["placement_instances"] == 9.0
    assert active.switch_cpus  # placed switches' breakdowns present


def test_run_is_deterministic():
    kwargs = dict(topology="tree", hosts=64, placement="leaf_combine",
                  cases=("active",))
    a = repro.run("reduce", **kwargs).cases["active"]
    b = repro.run("reduce", **kwargs).cases["active"]
    assert a.exec_ps == b.exec_ps
    assert a.extra == b.extra


def test_all_four_case_labels_complete():
    result = repro.run("reduce", topology="tree", hosts=16)
    assert set(result.cases) == {"normal", "normal+pref",
                                 "active", "active+pref"}
    # Prefetch has no meaning for a collective: labels pair up exactly.
    assert result.cases["normal"].exec_ps == \
        result.cases["normal+pref"].exec_ps
    assert result.cases["active"].exec_ps == \
        result.cases["active+pref"].exec_ps


def test_placement_policies_change_latency_not_result():
    times = {}
    for policy in ("root_only", "per_level"):
        case = repro.run("reduce", topology="tree", hosts=128,
                         placement=policy, cases=("active",)).cases["active"]
        times[policy] = case.exec_ps
    assert times["per_level"] < times["root_only"]


def test_bad_parameters_fail_at_spec_time():
    with pytest.raises(ValueError, match="placement"):
        FabricReduceApp(placement="nowhere")
    with pytest.raises(ValueError):
        FabricReduceApp(topology="hypercube")
    with pytest.raises(ValueError, match="vector_bytes"):
        FabricReduceApp(vector_bytes=6)


def test_metrics_sink_and_trace():
    from repro.obs import TraceCollector

    app = FabricReduceApp(topology="tree", hosts=16)
    config = app.cluster_config().with_case(active=True, prefetch=False)
    sink = {}
    collector = TraceCollector()
    case = app.run_case(config, trace=collector, metrics_sink=sink)
    assert case.label == "active"
    assert sink["fabric.level0.combines"] == 16.0
    assert any(event.component == "fabric" for event in collector.events)

"""End-to-end functional correctness: active partitionings produce the
same answers as host-only execution.

The timing model can only be trusted if the *functional* halves of the
partitioned applications are equivalent — these tests run both sides'
data transformations and compare against oracles.
"""

import pytest

from repro.apps.grep import GrepApp, LiteralMatcher
from repro.apps.hashjoin import HashJoinApp
from repro.apps.mpeg_filter import MpegFilterApp
from repro.apps.sort import SortApp
from repro.workloads import datamation, mpeg, records


# ----------------------------------------------------------------------
# MPEG: the filtered stream contains exactly the I frames
# ----------------------------------------------------------------------
def test_mpeg_filter_output_is_exactly_the_i_frames():
    stream = mpeg.generate_stream(total_bytes=300_000)
    # The handler's functional job: drop non-I frames.
    kept = b"".join(
        stream.data[f.offset:f.offset + f.total_bytes]
        for f in stream.frames if f.is_intra)
    # Re-parse the filtered stream: every frame must be I-type and the
    # frame sequence must equal the I-subsequence of the original.
    refiltered = mpeg.parse_frames(kept)
    assert all(f.frame_type == mpeg.FRAME_I for f in refiltered)
    original_i = [f.total_bytes for f in stream.frames if f.is_intra]
    assert [f.total_bytes for f in refiltered] == original_i


def test_mpeg_app_block_accounting_matches_stream():
    app = MpegFilterApp(scale=0.2)
    assert sum(b.nbytes for b in app.blocks) == len(app.stream.data)
    assert sum(b.out_bytes for b in app.blocks) == app.total_i_bytes
    i_bytes = sum(f.total_bytes for f in app.stream.frames if f.is_intra)
    assert app.total_i_bytes == i_bytes


# ----------------------------------------------------------------------
# HashJoin: the filtered join equals the unfiltered oracle join
# ----------------------------------------------------------------------
def test_hashjoin_filtered_join_equals_oracle_join():
    app = HashJoinApp(scale=1 / 256)
    r_keys = set(app.r_table.keys)
    bv = app.bit_vector
    bits = len(bv) * 8

    # Oracle: join without any filter.
    oracle_matches = [k for k in app.s_table.keys if k in r_keys]

    # Active path: bit-vector filter at the switch, join at the host.
    survivors = [k for k in app.s_table.keys
                 if bv[(hash(k) % bits) >> 3] & (1 << ((hash(k) % bits) & 7))]
    joined = [k for k in survivors if k in r_keys]

    assert joined == oracle_matches  # no false negatives, ever
    assert len(survivors) >= len(oracle_matches)  # false positives allowed


def test_hashjoin_block_out_bytes_match_pass_counts():
    app = HashJoinApp(scale=1 / 256)
    s_blocks = app.blocks[app.r_phase_blocks:]
    total_out = sum(b.out_bytes for b in s_blocks)
    assert total_out == app.s_passing * records.RECORD_BYTES
    # R blocks pass through entirely.
    r_blocks = app.blocks[:app.r_phase_blocks]
    assert all(b.out_bytes == b.nbytes for b in r_blocks)


# ----------------------------------------------------------------------
# Sort: redistribution is a permutation and ranges are disjoint
# ----------------------------------------------------------------------
def test_sort_redistribution_is_a_permutation():
    app = SortApp(scale=1 / 1024)
    assert app.distribution_is_conservative()


def test_sort_switch_routing_equals_host_routing():
    """The switch handler and the host use the same range partition."""
    keys = datamation.generate_keys(2000, seed=23)
    boundaries = datamation.range_boundaries(4)
    for key in keys:
        host_choice = datamation.assign_node(key, boundaries)
        switch_choice = (int.from_bytes(key, "big") * 4) >> 80
        assert host_choice == switch_choice


def test_sort_globally_sorted_after_distribution_and_local_sort():
    """Concatenating the per-node sorted slices yields a total order —
    the property the one-pass parallel sort depends on."""
    num_nodes = 4
    keys = datamation.generate_keys(4000, seed=29)
    buckets = [[] for _ in range(num_nodes)]
    for key in keys:
        owner = (int.from_bytes(key, "big") * num_nodes) >> 80
        buckets[owner].append(key)
    combined = []
    for bucket in buckets:
        combined.extend(sorted(bucket))
    assert combined == sorted(keys)


# ----------------------------------------------------------------------
# Grep: streamed (active) search equals whole-file (host) search
# ----------------------------------------------------------------------
@pytest.mark.parametrize("chunk_size", [64, 512, 4096])
def test_grep_streamed_equals_whole_file(chunk_size):
    app = GrepApp(scale=0.05)
    matcher = LiteralMatcher(app.pattern.encode("ascii"))
    _, whole = matcher.feed(app.data)

    state = 0
    streamed = 0
    for offset in range(0, len(app.data), chunk_size):
        state, ends = matcher.feed(app.data[offset:offset + chunk_size],
                                   state)
        streamed += len(ends)
    assert streamed == len(whole)


def test_grep_app_totals_are_chunking_invariant():
    counts = set()
    match_bytes = set()
    for request in (8 * 1024, 32 * 1024):
        class Chunked(GrepApp):
            request_bytes = request

        app = Chunked(scale=0.1)
        counts.add(app.total_matches)
        match_bytes.add(app.total_match_bytes)
    assert len(counts) == 1
    assert len(match_bytes) == 1

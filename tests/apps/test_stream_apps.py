"""Shape and invariant tests for the streaming benchmarks.

Each test runs the four configurations at a small scale and asserts the
paper's *qualitative* results: case orderings, utilization relations,
traffic fractions, and conservation invariants.  Exact magnitudes are
covered by the benchmark harness against the paper's numbers.
"""

import pytest

from repro.apps import (
    GrepApp,
    HashJoinApp,
    Md5App,
    MpegFilterApp,
    SelectApp,
    SortApp,
    TarApp,
    run_four_cases,
)

# Small scales keep the whole module in seconds.
GREP_SCALE = 0.25
SELECT_SCALE = 1 / 128
HASHJOIN_SCALE = 1 / 128
MPEG_SCALE = 0.25
TAR_SCALE = 0.25
SORT_SCALE = 1 / 512
MD5_SCALE = 0.5


@pytest.fixture(scope="module")
def grep_result():
    return run_four_cases(lambda: GrepApp(scale=GREP_SCALE))


@pytest.fixture(scope="module")
def select_result():
    return run_four_cases(lambda: SelectApp(scale=SELECT_SCALE))


@pytest.fixture(scope="module")
def mpeg_result():
    return run_four_cases(lambda: MpegFilterApp(scale=MPEG_SCALE))


@pytest.fixture(scope="module")
def tar_result():
    return run_four_cases(lambda: TarApp(scale=TAR_SCALE))


@pytest.fixture(scope="module")
def sort_result():
    return run_four_cases(lambda: SortApp(scale=SORT_SCALE))


# ----------------------------------------------------------------------
# Cross-benchmark invariants
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fixture_name", [
    "grep_result", "select_result", "mpeg_result", "tar_result",
    "sort_result"])
def test_normal_case_is_slowest(fixture_name, request):
    result = request.getfixturevalue(fixture_name)
    for label in ("normal+pref", "active", "active+pref"):
        assert result.normalized_time(label) <= 1.0, (
            f"{result.name}: {label} slower than normal")


@pytest.mark.parametrize("fixture_name", [
    "grep_result", "select_result", "mpeg_result", "tar_result",
    "sort_result"])
def test_prefetch_never_hurts(fixture_name, request):
    result = request.getfixturevalue(fixture_name)
    assert (result.case("normal+pref").exec_ps
            <= result.case("normal").exec_ps)
    assert (result.case("active+pref").exec_ps
            <= result.case("active").exec_ps * 1.001)


@pytest.mark.parametrize("fixture_name", [
    "grep_result", "select_result", "mpeg_result", "tar_result",
    "sort_result"])
def test_active_reduces_host_traffic(fixture_name, request):
    result = request.getfixturevalue(fixture_name)
    assert result.normalized_traffic("active") < 1.0
    assert (result.normalized_traffic("active")
            == pytest.approx(result.normalized_traffic("active+pref")))


@pytest.mark.parametrize("fixture_name", [
    "grep_result", "select_result", "mpeg_result", "tar_result",
    "sort_result"])
def test_breakdown_fractions_sum_to_one(fixture_name, request):
    result = request.getfixturevalue(fixture_name)
    for case in result.cases.values():
        for _, breakdown in case.breakdown_rows():
            total = (breakdown.busy_frac + breakdown.stall_frac
                     + breakdown.idle_frac)
            assert total == pytest.approx(1.0, abs=1e-6)


@pytest.mark.parametrize("fixture_name", [
    "grep_result", "select_result", "mpeg_result", "tar_result",
    "sort_result"])
def test_switch_breakdowns_only_in_active_cases(fixture_name, request):
    result = request.getfixturevalue(fixture_name)
    assert result.case("normal").switch_cpus == []
    assert result.case("normal+pref").switch_cpus == []
    assert len(result.case("active").switch_cpus) >= 1


# ----------------------------------------------------------------------
# Grep specifics
# ----------------------------------------------------------------------
def test_grep_functional_matches(grep_result):
    app = GrepApp(scale=GREP_SCALE)
    assert app.total_matches == app.reference_match_count()
    assert app.total_matches == 4  # 16 * 0.25


def test_grep_active_host_nearly_idle(grep_result):
    assert grep_result.utilization("active") < 0.05
    assert grep_result.utilization("active+pref") < 0.05


def test_grep_filters_nearly_all_traffic(grep_result):
    assert grep_result.normalized_traffic("active") < 0.01


def test_grep_normal_pref_beats_active_sync(grep_result):
    # Paper: "normal+pref ... performs better than the active case".
    assert (grep_result.case("normal+pref").exec_ps
            <= grep_result.case("active").exec_ps)


def test_grep_active_pref_is_best(grep_result):
    best = min(case.exec_ps for case in grep_result.cases.values())
    assert grep_result.case("active+pref").exec_ps == best


# ----------------------------------------------------------------------
# Select specifics
# ----------------------------------------------------------------------
def test_select_functional_matches():
    app = SelectApp(scale=SELECT_SCALE)
    assert app.total_matches == app.reference_match_count()
    fraction = app.total_matches / app.table.num_records
    assert fraction == pytest.approx(0.25, abs=0.05)


def test_select_traffic_is_selectivity(select_result):
    assert select_result.normalized_traffic("active") == pytest.approx(
        0.25, abs=0.05)


def test_select_utilization_ratio_large(select_result):
    normal_avg = (select_result.utilization("normal")
                  + select_result.utilization("normal+pref")) / 2
    active_avg = (select_result.utilization("active")
                  + select_result.utilization("active+pref")) / 2
    assert normal_avg / active_avg > 5


def test_select_io_bound_cases_close(select_result):
    # normal+pref, active, active+pref within a few percent of each other.
    times = [select_result.case(label).exec_ps
             for label in ("normal+pref", "active", "active+pref")]
    assert max(times) / min(times) < 1.15


# ----------------------------------------------------------------------
# MPEG specifics
# ----------------------------------------------------------------------
def test_mpeg_traffic_matches_i_fraction(mpeg_result):
    app = MpegFilterApp(scale=MPEG_SCALE)
    expected = 1.0 - app.p_byte_fraction
    assert mpeg_result.normalized_traffic("active") == pytest.approx(
        expected, abs=0.02)


def test_mpeg_active_speedup_positive(mpeg_result):
    assert mpeg_result.active_speedup > 1.0
    assert mpeg_result.active_pref_speedup > 1.0


def test_mpeg_both_cpus_busy_in_active(mpeg_result):
    case = mpeg_result.case("active+pref")
    assert case.host.utilization > 0.5
    assert case.switch_cpus[0].busy_frac > 0.3


# ----------------------------------------------------------------------
# Tar specifics
# ----------------------------------------------------------------------
def test_tar_active_traffic_headers_only(tar_result):
    app = TarApp(scale=TAR_SCALE)
    case = tar_result.case("active")
    assert case.host_bytes_out == len(app.files) * 512
    assert case.host_bytes_in == 0


def test_tar_active_host_idle(tar_result):
    assert tar_result.utilization("active") < 0.02


def test_tar_io_bound_cases_close(tar_result):
    times = [tar_result.case(label).exec_ps
             for label in ("normal+pref", "active", "active+pref")]
    assert max(times) / min(times) < 1.15


# ----------------------------------------------------------------------
# Sort specifics
# ----------------------------------------------------------------------
def test_sort_traffic_fraction_matches_formula(sort_result):
    p = 4
    assert sort_result.normalized_traffic("active") == pytest.approx(
        p / (3 * p - 2), abs=0.02)


def test_sort_distribution_conserves_records():
    app = SortApp(scale=SORT_SCALE)
    assert app.distribution_is_conservative()


def test_sort_partition_matches_datamation_oracle():
    from repro.workloads import datamation
    keys = datamation.generate_keys(500, seed=17)
    boundaries = datamation.range_boundaries(4)
    for key in keys:
        fast = (int.from_bytes(key, "big") * 4) >> 80
        assert fast == datamation.assign_node(key, boundaries)


def test_sort_active_host_nearly_idle(sort_result):
    assert sort_result.utilization("active") < 0.02


# ----------------------------------------------------------------------
# MD5 specifics (single-CPU failure case + 4-CPU recovery)
# ----------------------------------------------------------------------
def test_md5_single_cpu_active_is_slower():
    result = run_four_cases(lambda: Md5App(scale=MD5_SCALE,
                                           num_switch_cpus=1))
    assert result.active_speedup < 1.0
    assert result.active_pref_speedup < 1.0


def test_md5_four_cpus_recover_speedup():
    result = run_four_cases(lambda: Md5App(scale=MD5_SCALE,
                                           num_switch_cpus=4))
    assert result.active_speedup > 1.0


def test_md5_chained_digest_deterministic():
    a = Md5App(scale=MD5_SCALE, num_switch_cpus=4)
    b = Md5App(scale=MD5_SCALE, num_switch_cpus=4)
    assert a.chained_digest == b.chained_digest
    assert a.digest == b.digest


# ----------------------------------------------------------------------
# HashJoin specifics (module-scoped run is pricier; keep one)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def hashjoin_result():
    return run_four_cases(lambda: HashJoinApp(scale=HASHJOIN_SCALE))


def test_hashjoin_bitvector_pass_fraction():
    app = HashJoinApp(scale=HASHJOIN_SCALE)
    # Reduction factor 0.24 plus some hash false positives.
    assert 0.2 < app.reference_pass_fraction() < 0.45


def test_hashjoin_no_false_negatives():
    app = HashJoinApp(scale=HASHJOIN_SCALE)
    # Every true match must survive the bit-vector filter.
    assert app.s_passing >= app.reference_true_matches()


def test_hashjoin_pref_cases_tie(hashjoin_result):
    assert hashjoin_result.active_pref_speedup == pytest.approx(1.0, abs=0.1)


def test_hashjoin_active_cuts_host_stall(hashjoin_result):
    npref = hashjoin_result.case("normal+pref").host.stall_frac
    apref = hashjoin_result.case("active+pref").host.stall_frac
    assert apref < npref


def test_hashjoin_active_reduces_traffic(hashjoin_result):
    assert hashjoin_result.normalized_traffic("active") < 0.6

"""Vectorised kernel accounting == the pure-Python definitional loops.

The burst work (docs/scaling.md) vectorised the per-record cost
accounting in Select (range counts), Grep (match bucketing), Sort
(80-bit key partition owners), and Tar (per-block header counts) with
numpy.  Each module keeps its original loop as the no-numpy fallback;
these tests run both paths on the same workload and require identical
results, so the numpy math (including Sort's exact uint64 limb
arithmetic) is pinned against the definitional version.
"""

import pytest

np = pytest.importorskip("numpy")


def _with_and_without_numpy(module, build):
    """Build twice — numpy path, then with the module's ``_np`` gone."""
    original = module._np
    assert original is not None
    vectorised = build()
    try:
        module._np = None
        fallback = build()
    finally:
        module._np = original
    return vectorised, fallback


def test_select_match_counts():
    from repro.apps import select as select_mod

    vec, ref = _with_and_without_numpy(
        select_mod, lambda: select_mod.SelectApp(scale=0.05))
    assert [b.out_bytes for b in vec.blocks] == \
        [b.out_bytes for b in ref.blocks]
    assert [b.host_cycles for b in vec.blocks] == \
        [b.host_cycles for b in ref.blocks]


def test_grep_per_block_matches():
    from repro.apps import grep as grep_mod

    vec, ref = _with_and_without_numpy(
        grep_mod, lambda: grep_mod.GrepApp(scale=0.2))
    assert [b.out_bytes for b in vec.blocks] == \
        [b.out_bytes for b in ref.blocks]
    assert [b.handler_cycles for b in vec.blocks] == \
        [b.handler_cycles for b in ref.blocks]


def test_sort_owner_counts_limb_math():
    """The uint64 limb evaluation of ``(key * p) >> 80`` is exact."""
    from repro.apps import sort as sort_mod
    from repro.workloads import datamation

    keys = datamation.generate_keys(4096, seed=7)
    for num_nodes in (2, 3, 4, 7, 64, 4096):
        vec = sort_mod._block_owner_counts(keys, 128, num_nodes)
        original = sort_mod._np
        try:
            sort_mod._np = None
            ref = sort_mod._block_owner_counts(keys, 128, num_nodes)
        finally:
            sort_mod._np = original
        assert vec == ref, f"owner counts diverge for p={num_nodes}"


def test_sort_overflow_guard_falls_back():
    """Past 4096 nodes the limb bound no longer holds; the helper must
    use the big-int loop rather than risk silent wraparound."""
    from repro.apps import sort as sort_mod
    from repro.workloads import datamation

    keys = datamation.generate_keys(512, seed=3)
    vec = sort_mod._block_owner_counts(keys, 64, 5000)
    original = sort_mod._np
    try:
        sort_mod._np = None
        ref = sort_mod._block_owner_counts(keys, 64, 5000)
    finally:
        sort_mod._np = original
    assert vec == ref


def test_tar_header_counts():
    """Tar vectorises header bucketing inside run_normal — compare the
    whole simulated case across the two paths."""
    from repro.apps import tar as tar_mod

    def run():
        app = tar_mod.TarApp(scale=0.1)
        config = app.cluster_config().with_case(active=False,
                                                prefetch=False)
        return app.run_case(config)

    vec, ref = _with_and_without_numpy(tar_mod, run)
    assert vec == ref

"""Unit tests for the switch-tree topology builder."""

import pytest

from repro.cluster.topology import SwitchTree
from repro.net import Message
from repro.sim import Environment


def test_single_leaf_for_few_hosts():
    tree = SwitchTree(Environment(), num_hosts=8)
    assert tree.depth == 1
    assert len(tree.levels[0]) == 1
    assert tree.root is tree.levels[0][0]


def test_two_leaves_get_a_root():
    tree = SwitchTree(Environment(), num_hosts=16)
    assert tree.depth == 2
    assert len(tree.levels[0]) == 2
    assert tree.root.fan_in == 2


def test_128_hosts_paper_topology():
    tree = SwitchTree(Environment(), num_hosts=128)
    assert len(tree.levels[0]) == 16
    assert tree.depth == 3
    assert len(tree.switches) == 16 + 2 + 1


def test_every_host_has_a_leaf():
    tree = SwitchTree(Environment(), num_hosts=20)
    for host in tree.hosts:
        leaf = tree.leaf_of(host)
        assert host in leaf.hosts


def test_leaf_of_unknown_host_raises():
    tree = SwitchTree(Environment(), num_hosts=8)
    other = SwitchTree(Environment(), num_hosts=8)
    with pytest.raises(ValueError):
        tree.leaf_of(other.hosts[0])


def test_subtree_host_bookkeeping():
    tree = SwitchTree(Environment(), num_hosts=64)
    assert sorted(tree.root.subtree_hosts) == sorted(
        h.name for h in tree.hosts)


def test_validation():
    with pytest.raises(ValueError):
        SwitchTree(Environment(), num_hosts=0)
    with pytest.raises(ValueError):
        SwitchTree(Environment(), num_hosts=8, hosts_per_leaf=16,
                   switch_ports=16)


def test_cross_leaf_message_routes_through_tree():
    """host0 -> host15 crosses two leaves and the root."""
    env = Environment()
    tree = SwitchTree(env, num_hosts=16)
    src, dst = tree.hosts[0], tree.hosts[15]

    def sender(env):
        yield from src.hca.transmit(Message(src.name, dst.name, 256))

    def receiver(env):
        return (yield dst.recv_queue.get()) if False else (
            yield dst.hca.recv_queue.get())

    env.process(sender(env))
    proc = env.process(receiver(env))
    message = env.run(until=proc)
    assert message.size_bytes == 256
    assert tree.root.switch.stats.forwarded >= 1


def test_same_leaf_message_stays_local():
    env = Environment()
    tree = SwitchTree(env, num_hosts=16)
    src, dst = tree.hosts[0], tree.hosts[1]  # same leaf

    def sender(env):
        yield from src.hca.transmit(Message(src.name, dst.name, 64))

    def receiver(env):
        return (yield dst.hca.recv_queue.get())

    env.process(sender(env))
    proc = env.process(receiver(env))
    env.run(until=proc)
    assert tree.root.switch.stats.forwarded == 0


def test_no_shared_mutable_default_configs():
    """Regression: SwitchTree used module-level dataclass instances as
    default arguments; two trees must never share config objects
    implicitly."""
    import inspect

    from repro.cluster.topology import SwitchTree as ST

    signature = inspect.signature(ST.__init__)
    assert signature.parameters["link_config"].default is None
    assert signature.parameters["active_config"].default is None
    a = ST(Environment(), num_hosts=8)
    b = ST(Environment(), num_hosts=8)
    assert a.link_config == b.link_config  # same values...
    # ...and either not the same object, or frozen (immutable) configs.
    import dataclasses
    assert dataclasses.is_dataclass(a.link_config)
    assert a.link_config.__dataclass_params__.frozen


@pytest.mark.parametrize("num_hosts", [1, 3, 7, 9, 17, 20, 63, 65, 100, 129])
@pytest.mark.parametrize("hosts_per_leaf", [3, 8])
def test_odd_host_counts_stay_consistent(num_hosts, hosts_per_leaf):
    """Satellite audit: non-power-of-hosts_per_leaf counts must keep
    routing tables, fan_in, and port accounting consistent."""
    tree = SwitchTree(Environment(), num_hosts=num_hosts,
                      hosts_per_leaf=hosts_per_leaf)
    tree.validate()
    assert sum(leaf.fan_in for leaf in tree.levels[0]) == num_hosts
    for level in tree.levels[1:]:
        for node in level:
            assert node.fan_in == len(node.children)


def test_validate_catches_broken_routing():
    from repro.cluster.topology import TopologyError

    tree = SwitchTree(Environment(), num_hosts=16)
    tree.validate()  # sound as built
    # Sabotage: point a leaf's route for its own host at the uplink.
    leaf = tree.levels[0][0]
    sabotaged = leaf.hosts[0].name
    leaf.switch.routing.add(sabotaged, leaf.switch.config.num_ports - 1)
    with pytest.raises(TopologyError, match="loop"):
        tree.validate()


def test_radix_parameter_controls_internal_fanout():
    tree = SwitchTree(Environment(), num_hosts=64, hosts_per_leaf=8, radix=4)
    assert len(tree.levels[0]) == 8
    assert len(tree.levels[1]) == 2   # 8 leaves / radix 4
    assert tree.depth == 3
    tree.validate()


def test_bad_radix_rejected():
    from repro.cluster.topology import TopologyError

    with pytest.raises(TopologyError, match="radix"):
        SwitchTree(Environment(), num_hosts=32, radix=1)
    with pytest.raises(TopologyError, match="radix"):
        SwitchTree(Environment(), num_hosts=32, switch_ports=16, radix=16)


def test_switch_names_routed_downward():
    """Internal switches route descendant *switch* names explicitly, so
    placement engines can address partial results to any switch."""
    tree = SwitchTree(Environment(), num_hosts=128)
    leaf0 = tree.levels[0][0]
    assert tree.root.switch.routing.has_route(leaf0.name)
    mid = tree.levels[1][0]
    assert tree.root.switch.routing.has_route(mid.name)
    assert mid.switch.routing.has_route(leaf0.name)

"""Unit tests for the switch-tree topology builder."""

import pytest

from repro.cluster.topology import SwitchTree
from repro.net import Message
from repro.sim import Environment


def test_single_leaf_for_few_hosts():
    tree = SwitchTree(Environment(), num_hosts=8)
    assert tree.depth == 1
    assert len(tree.levels[0]) == 1
    assert tree.root is tree.levels[0][0]


def test_two_leaves_get_a_root():
    tree = SwitchTree(Environment(), num_hosts=16)
    assert tree.depth == 2
    assert len(tree.levels[0]) == 2
    assert tree.root.fan_in == 2


def test_128_hosts_paper_topology():
    tree = SwitchTree(Environment(), num_hosts=128)
    assert len(tree.levels[0]) == 16
    assert tree.depth == 3
    assert len(tree.switches) == 16 + 2 + 1


def test_every_host_has_a_leaf():
    tree = SwitchTree(Environment(), num_hosts=20)
    for host in tree.hosts:
        leaf = tree.leaf_of(host)
        assert host in leaf.hosts


def test_leaf_of_unknown_host_raises():
    tree = SwitchTree(Environment(), num_hosts=8)
    other = SwitchTree(Environment(), num_hosts=8)
    with pytest.raises(ValueError):
        tree.leaf_of(other.hosts[0])


def test_subtree_host_bookkeeping():
    tree = SwitchTree(Environment(), num_hosts=64)
    assert sorted(tree.root.subtree_hosts) == sorted(
        h.name for h in tree.hosts)


def test_validation():
    with pytest.raises(ValueError):
        SwitchTree(Environment(), num_hosts=0)
    with pytest.raises(ValueError):
        SwitchTree(Environment(), num_hosts=8, hosts_per_leaf=16,
                   switch_ports=16)


def test_cross_leaf_message_routes_through_tree():
    """host0 -> host15 crosses two leaves and the root."""
    env = Environment()
    tree = SwitchTree(env, num_hosts=16)
    src, dst = tree.hosts[0], tree.hosts[15]

    def sender(env):
        yield from src.hca.transmit(Message(src.name, dst.name, 256))

    def receiver(env):
        return (yield dst.recv_queue.get()) if False else (
            yield dst.hca.recv_queue.get())

    env.process(sender(env))
    proc = env.process(receiver(env))
    message = env.run(until=proc)
    assert message.size_bytes == 256
    assert tree.root.switch.stats.forwarded >= 1


def test_same_leaf_message_stays_local():
    env = Environment()
    tree = SwitchTree(env, num_hosts=16)
    src, dst = tree.hosts[0], tree.hosts[1]  # same leaf

    def sender(env):
        yield from src.hca.transmit(Message(src.name, dst.name, 64))

    def receiver(env):
        return (yield dst.hca.recv_queue.get())

    env.process(sender(env))
    proc = env.process(receiver(env))
    env.run(until=proc)
    assert tree.root.switch.stats.forwarded == 0

"""Property-based tests: random fabric shapes stay sound.

For arbitrary (kind, host count, leaf width, radix/spine) combinations
drawn by hypothesis:

* every host pair has a loop-free route (``Fabric.path`` walks the real
  routing tables and raises on a loop or an off-fabric hop);
* the static validator agrees the fabric is sound;
* hierarchical in-network aggregation is bit-identical to the oracle
  (and therefore to the host-only software reduction, since addition
  mod 2^32 is associative).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.reduction import REDUCTION_HCA, _make_vectors, _oracle
from repro.cluster.fabric import TopologySpec, build_fabric
from repro.cluster.placement import plan_placement, run_placed_reduction
from repro.sim import Environment


@st.composite
def tree_specs(draw):
    hosts_per_leaf = draw(st.integers(min_value=2, max_value=8))
    num_hosts = draw(st.integers(min_value=1, max_value=64))
    radix = draw(st.one_of(st.none(), st.integers(min_value=2, max_value=8)))
    return TopologySpec(kind="tree", num_hosts=num_hosts,
                        hosts_per_leaf=hosts_per_leaf, radix=radix)


@st.composite
def fat_tree_specs(draw):
    hosts_per_leaf = draw(st.integers(min_value=2, max_value=8))
    # Keep leaves within one spine's port budget (16).
    num_hosts = draw(st.integers(min_value=1,
                                 max_value=min(64, hosts_per_leaf * 16)))
    spines = draw(st.integers(min_value=1,
                              max_value=16 - hosts_per_leaf))
    return TopologySpec(kind="fat_tree", num_hosts=num_hosts,
                        hosts_per_leaf=hosts_per_leaf, spines=spines)


def _assert_all_pairs_loop_free(fabric):
    fabric.validate()
    hosts = [host.name for host in fabric.hosts]
    # path() raises TopologyError on any loop or off-fabric hop; cap the
    # pair count so the densest shapes stay fast.
    for src in hosts[:12]:
        for dst in hosts:
            if src != dst:
                hops = fabric.path(src, dst)
                assert 1 <= len(hops) <= len(fabric.switches)


@given(spec=tree_specs())
@settings(max_examples=40, deadline=None)
def test_property_tree_routes_are_loop_free(spec):
    _assert_all_pairs_loop_free(build_fabric(Environment(), spec))


@given(spec=fat_tree_specs())
@settings(max_examples=40, deadline=None)
def test_property_fat_tree_routes_are_loop_free(spec):
    _assert_all_pairs_loop_free(build_fabric(Environment(), spec))


@given(spec=st.one_of(tree_specs(), fat_tree_specs()),
       policy=st.sampled_from(("root_only", "leaf_combine", "per_level")))
@settings(max_examples=25, deadline=None)
def test_property_aggregation_is_bit_exact(spec, policy):
    """Any shape x any policy: the in-network sum equals the oracle."""
    fabric = build_fabric(Environment(), spec,
                          hca_config=REDUCTION_HCA)
    vectors = _make_vectors(spec.num_hosts, vector_bytes=64)
    done = run_placed_reduction(fabric, plan_placement(fabric, policy),
                                vectors)
    assert done["result"] == _oracle(vectors)

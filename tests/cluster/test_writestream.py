"""Unit tests for WriteStream."""

import pytest

from repro.cluster import ClusterConfig, System
from repro.cluster.iostream import WriteStream
from repro.sim.units import ms, us


def make_stream(depth=1, request_cost="os"):
    system = System(ClusterConfig())
    stream = WriteStream(system, system.host, request_bytes=64 * 1024,
                         depth=depth, request_cost=request_cost)
    return system, stream


def run_writes(system, stream, count):
    def writer(env):
        for _ in range(count):
            yield from stream.write_block()
        yield from stream.drain()

    proc = system.env.process(writer(system.env))
    system.env.run(until=proc)


def test_writes_commit_all_bytes():
    system, stream = make_stream()
    run_writes(system, stream, 4)
    assert stream.bytes_written == 4 * 64 * 1024
    assert system.storage.disks.bytes_written == 4 * 64 * 1024


def test_write_traffic_accounted_out():
    system, stream = make_stream()
    run_writes(system, stream, 2)
    assert system.host.hca.traffic.bytes_out == 2 * 64 * 1024


def test_from_switch_writes_bypass_host_accounting():
    system = System(ClusterConfig(active=True))
    stream = WriteStream(system, system.host, request_bytes=64 * 1024,
                         from_switch=True, request_cost="none")
    run_writes(system, stream, 2)
    assert system.host.hca.traffic.bytes_out == 0


def test_os_cost_charged_per_write():
    system, stream = make_stream()
    run_writes(system, stream, 3)
    expected = 3 * (us(30) + 64 * us(0.27))
    assert system.host.cpu.accounting.busy_ps == expected


def test_depth_two_overlaps_writes():
    def total_time(depth):
        system, stream = make_stream(depth=depth)

        def writer(env):
            for _ in range(6):
                yield from stream.write_block()
                yield from system.host.cpu.work(busy_cycles=600_000)  # 300us
            yield from stream.drain()

        proc = system.env.process(writer(system.env))
        system.env.run(until=proc)
        return system.env.now

    assert total_time(2) < total_time(1)


def test_sequential_writes_skip_positioning():
    system, stream = make_stream()
    run_writes(system, stream, 3)
    disk0 = system.storage.disks.disks[0]
    assert disk0.stats.sequential_requests == 2


def test_validation():
    system = System(ClusterConfig())
    with pytest.raises(ValueError):
        WriteStream(system, system.host, request_bytes=0)
    with pytest.raises(ValueError):
        WriteStream(system, system.host, request_bytes=1, depth=0)
    stream = WriteStream(system, system.host, request_bytes=1024)
    with pytest.raises(ValueError):
        list(stream.write_block(0))

"""Fabric fail-stop: kill/revive, detection, partition checks, repair."""

import pytest

from repro.apps.reduction import REDUCTION_HCA, _make_vectors, _oracle
from repro.cluster.fabric import (FabricPartitioned, TopologySpec,
                                  build_fabric)
from repro.cluster.placement import (CollectiveTimeout, plan_placement,
                                     repair_plan, run_placed_reduction)
from repro.faults import (FailStopEvent, FailStopFaults, FaultInjector,
                          FaultPlan)
from repro.obs import MetricsRegistry
from repro.sim import Environment
from repro.sim.units import us


def _fat_tree(num_hosts=64, injector=None):
    env = Environment()
    fabric = build_fabric(env, TopologySpec(kind="fat_tree",
                                            num_hosts=num_hosts),
                          hca_config=REDUCTION_HCA, injector=injector)
    return env, fabric


def _failstop_injector(*events, seed=0, timeout_ps=us(200)):
    plan = FaultPlan(failstop=FailStopFaults(
        events=tuple(events), collective_timeout_ps=timeout_ps))
    return FaultInjector(plan, seed=seed)


# ----------------------------------------------------------------------
# Management plane: fail / revive / detect
# ----------------------------------------------------------------------
def test_fail_switch_kills_every_touching_wire():
    env, fabric = _fat_tree()
    assert fabric.fail_switch("spine0")
    node = {n.name: n for n in fabric.switches}["spine0"]
    assert node.is_down and node.failed_at == env.now
    touching = [link for name, link in fabric.links.items()
                if "spine0" in name.split("->")]
    assert touching and all(link.is_down for link in touching)
    assert fabric.ft.switch_kills == 1
    # Other wires untouched.
    assert any(not link.is_down for link in fabric.links.values())


def test_fail_unknown_target_is_ignored():
    _, fabric = _fat_tree()
    assert not fabric.fail_switch("spine99")
    assert not fabric.fail_link("ghost", "spine0")
    assert fabric.ft.switch_kills == fabric.ft.link_kills == 0


def test_immediate_detection_fails_over_the_sender_port():
    env, fabric = _fat_tree()
    leaf = fabric.levels[0][0]
    assert leaf.switch.routing.ports_for("spine0")
    before = tuple(leaf.switch.routing.ports_for("spine0"))
    fabric.fail_switch("spine0", detect=True)
    # Every leaf marked its uplink port down; ECMP lost one member.
    assert leaf.switch.routing.down_ports
    assert not leaf.switch.routing.ports_for("spine0")
    assert leaf.switch.stats.ports_failed == 1
    assert fabric.failovers == len(fabric.levels[0])
    assert fabric.ft.detections == len(fabric.levels[0])
    assert len(before) == 1


def test_detected_down_reports_earliest_declaration():
    env, fabric = _fat_tree()
    fabric.fail_switch("spine1", detect=True)
    detected = fabric.detected_down()
    assert detected == {"spine1": env.now}
    # Ground truth recorded on the node too.
    node = {n.name: n for n in fabric.switches}["spine1"]
    assert node.detected_down_at == env.now


def test_revive_switch_restores_wires_and_routing():
    env, fabric = _fat_tree()
    leaf = fabric.levels[0][0]
    fabric.fail_switch("spine0", detect=True)
    assert not leaf.switch.routing.ports_for("spine0")
    assert fabric.revive_switch("spine0")
    assert leaf.switch.routing.down_ports == ()
    assert leaf.switch.routing.ports_for("spine0")
    node = {n.name: n for n in fabric.switches}["spine0"]
    assert not node.is_down and node.detected_down_at is None
    assert all(not link.is_down for link in fabric.links.values())
    assert fabric.ft.revivals == 1


def test_ecmp_host_routes_survive_one_spine_down():
    """Host-to-host flows re-hash onto surviving spines: every remote
    pair still has a live path after a single spine death."""
    _, fabric = _fat_tree()
    fabric.fail_switch("spine0", detect=True)
    for leaf in fabric.levels[0]:
        for host in fabric.hosts:
            if host in leaf.hosts:
                continue
            assert leaf.switch.routing.ports_for(host.name), \
                f"{leaf.name} lost every route to {host.name}"


# ----------------------------------------------------------------------
# Partition detection
# ----------------------------------------------------------------------
def test_single_spine_down_is_not_a_partition():
    _, fabric = _fat_tree()
    fabric.fail_switch("spine0", detect=True)
    fabric.check_partition()          # no raise
    fabric.validate()                 # failover-aware validation passes


def test_all_spines_down_is_a_partition():
    _, fabric = _fat_tree()
    spines = [node.name for node in fabric.levels[-1]]
    for name in spines:
        fabric.fail_switch(name, detect=True)
    with pytest.raises(FabricPartitioned):
        fabric.check_partition()
    with pytest.raises(FabricPartitioned):
        fabric.validate()


def test_path_raises_fabric_partitioned_when_unroutable():
    _, fabric = _fat_tree()
    for node in fabric.levels[-1]:
        fabric.fail_switch(node.name, detect=True)
    src = fabric.hosts[0].name
    dst = fabric.hosts[-1].name
    with pytest.raises(FabricPartitioned, match="no surviving route"):
        fabric.path(src, dst)


def test_path_reroutes_around_a_dead_spine():
    _, fabric = _fat_tree(num_hosts=64)
    src, dst = fabric.hosts[0].name, fabric.hosts[-1].name
    baseline = fabric.path(src, dst)
    spine = baseline[1]               # the ECMP choice for this flow
    fabric.fail_switch(spine, detect=True)
    rerouted = fabric.path(src, dst)
    assert rerouted[1] != spine
    assert rerouted[0] == baseline[0] and rerouted[-1] == baseline[-1]


# ----------------------------------------------------------------------
# Placement repair
# ----------------------------------------------------------------------
def test_repair_plan_reroots_onto_surviving_spine():
    _, fabric = _fat_tree()
    plan = plan_placement(fabric, "per_level")
    root = fabric.aggregation_root.name
    fabric.fail_switch(root, detect=True)
    repaired = repair_plan(fabric, plan, fabric.detected_down())
    placed = {p.switch for p in repaired.placements.values()}
    assert root not in placed
    assert any(node.name in placed for node in fabric.levels[-1]
               if node.name != root)


def test_repair_plan_without_placed_casualty_returns_plan_unchanged():
    _, fabric = _fat_tree()
    plan = plan_placement(fabric, "per_level")
    # A spine outside the placement died: timeout was congestion-like,
    # retry as-is.
    others = [n.name for n in fabric.levels[-1]
              if n.name != fabric.aggregation_root.name]
    fabric.fail_switch(others[0], detect=True)
    dead = {others[0]}
    assert repair_plan(fabric, plan, dead) is plan


def test_repair_plan_dead_leaf_is_unrecoverable():
    _, fabric = _fat_tree()
    plan = plan_placement(fabric, "per_level")
    leaf = fabric.levels[0][0].name
    with pytest.raises(FabricPartitioned, match="entry switch"):
        repair_plan(fabric, plan, {leaf})


def test_repair_plan_no_surviving_root_is_unrecoverable():
    _, fabric = _fat_tree()
    plan = plan_placement(fabric, "per_level")
    for node in fabric.levels[-1]:
        fabric.fail_switch(node.name, detect=True)
    with pytest.raises(FabricPartitioned):
        repair_plan(fabric, plan, fabric.detected_down())


# ----------------------------------------------------------------------
# End to end: scripted kills through the armed driver
# ----------------------------------------------------------------------
def test_spine_kill_mid_collective_repairs_and_stays_exact():
    injector = _failstop_injector(
        FailStopEvent(kind="switch_down", target="spine0", at_ps=us(12)))
    env, fabric = _fat_tree(injector=injector)
    vectors = _make_vectors(len(fabric.hosts))
    plan = plan_placement(fabric, "per_level")
    done = run_placed_reduction(fabric, plan, vectors)
    assert done["result"] == _oracle(vectors)
    assert done["attempts"] == 2
    assert done["repairs"] == 1
    assert fabric.ft.switch_kills == 1
    assert fabric.ft.detections > 0
    assert fabric.ft.detection_latency_ps_max <= us(10)  # heartbeat bound
    assert injector.snapshot()["injected_failstop_switch_down"] == 1.0


def test_late_kill_is_absorbed_without_retry():
    injector = _failstop_injector(
        FailStopEvent(kind="switch_down", target="spine0", at_ps=us(30)))
    env, fabric = _fat_tree(injector=injector)
    vectors = _make_vectors(len(fabric.hosts))
    plan = plan_placement(fabric, "per_level")
    done = run_placed_reduction(fabric, plan, vectors)
    assert done["result"] == _oracle(vectors)
    assert done["attempts"] == 1
    assert done["repairs"] == 0


def test_revived_switch_serves_a_second_collective():
    injector = _failstop_injector(
        FailStopEvent(kind="switch_down", target="spine0", at_ps=us(12),
                      revive_at_ps=us(300)))
    env, fabric = _fat_tree(injector=injector)
    vectors = _make_vectors(len(fabric.hosts))
    plan = plan_placement(fabric, "per_level")
    done = run_placed_reduction(fabric, plan, vectors)
    assert done["result"] == _oracle(vectors)
    assert done["repairs"] == 1
    # Let the reviver fire, then the fabric must be whole again.
    env.run(until=env.timeout(us(400) - env.now))
    assert fabric.ft.revivals == 1
    fabric.check_partition()
    fabric.validate()


def test_all_spines_dead_surfaces_partition_not_hang():
    events = [FailStopEvent(kind="switch_down", target=f"spine{i}",
                            at_ps=us(5)) for i in range(4)]
    injector = _failstop_injector(*events)
    env, fabric = _fat_tree(injector=injector)
    assert len(fabric.levels[-1]) == 4
    vectors = _make_vectors(len(fabric.hosts))
    plan = plan_placement(fabric, "per_level")
    with pytest.raises((FabricPartitioned, CollectiveTimeout)):
        run_placed_reduction(fabric, plan, vectors)


# ----------------------------------------------------------------------
# Metrics surface
# ----------------------------------------------------------------------
def test_register_metrics_exposes_failover_counters():
    _, fabric = _fat_tree()
    metrics = MetricsRegistry()
    fabric.register_metrics(metrics)
    fabric.fail_switch("spine0", detect=True)
    snapshot = metrics.snapshot("fabric")
    assert snapshot["fabric.failovers"] == float(len(fabric.levels[0]))
    assert snapshot["fabric.detections"] == float(len(fabric.levels[0]))
    assert snapshot["fabric.repairs"] == 0.0
    assert "fabric.detection_latency_ps.max" in snapshot
    assert "fabric.detection_latency_ps.mean" in snapshot

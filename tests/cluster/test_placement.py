"""Unit tests for the handler placement engine."""

import pytest

from repro.apps.reduction import REDUCTION_HCA, _make_vectors, _oracle
from repro.cluster.fabric import TopologySpec, build_fabric
from repro.cluster.placement import (PLACEMENT_POLICIES, plan_placement,
                                     run_placed_reduction)
from repro.cluster.topology import TopologyError
from repro.obs import MetricsRegistry
from repro.sim import Environment


def _fabric(kind, hosts, **kw):
    env = Environment()
    spec = TopologySpec(kind=kind, num_hosts=hosts, **kw)
    return build_fabric(env, spec, hca_config=REDUCTION_HCA)


def test_root_only_plan_shape():
    fabric = _fabric("tree", 64)
    plan = plan_placement(fabric, "root_only")
    assert plan.instances == 1
    only = plan.placements[plan.root]
    assert only.role == "finalize"
    assert only.expected == 64
    assert all(switch == plan.root for switch, _ in plan.entry.values())


def test_leaf_combine_plan_shape():
    fabric = _fabric("tree", 64)
    plan = plan_placement(fabric, "leaf_combine")
    assert plan.describe()["per_level"] == {0: 8, 1: 1}
    root = plan.placements[plan.root]
    assert root.expected == 8  # one partial per leaf
    for host in fabric.hosts:
        switch, _ = plan.entry[host.name]
        assert switch == fabric.leaf_of(host).name


def test_per_level_plan_covers_every_level():
    fabric = _fabric("tree", 128)  # depth 3: 16 leaves, 2 mids, root
    plan = plan_placement(fabric, "per_level")
    assert plan.describe()["per_level"] == {0: 16, 1: 2, 2: 1}
    mid = fabric.levels[1][0]
    placement = plan.placements[mid.name]
    assert placement.role == "combine"
    assert placement.expected == mid.fan_in
    assert placement.parent == fabric.aggregation_root.name


def test_single_switch_degenerates_to_root_only():
    fabric = _fabric("single", 16)
    for policy in PLACEMENT_POLICIES:
        plan = plan_placement(fabric, policy)
        assert plan.instances == 1
        assert plan.placements[plan.root].expected == 16


def test_unknown_policy_rejected():
    fabric = _fabric("tree", 16)
    with pytest.raises(TopologyError, match="placement policy"):
        plan_placement(fabric, "everywhere")


@pytest.mark.parametrize("kind,hosts", [
    ("tree", 64), ("tree", 20), ("fat_tree", 64), ("fat_tree", 20),
    ("single", 16),
])
@pytest.mark.parametrize("policy", PLACEMENT_POLICIES)
def test_placed_reduction_matches_oracle(kind, hosts, policy):
    """Every (topology, policy) combination computes the exact sum."""
    fabric = _fabric(kind, hosts)
    vectors = _make_vectors(hosts)
    done = run_placed_reduction(fabric, plan_placement(fabric, policy),
                                vectors)
    assert done["result"] == _oracle(vectors)


def test_hierarchical_beats_root_only_at_scale():
    vectors = _make_vectors(128)
    latencies = {}
    for policy in ("root_only", "per_level"):
        fabric = _fabric("tree", 128)
        done = run_placed_reduction(
            fabric, plan_placement(fabric, policy), vectors)
        latencies[policy] = done["latency_ps"]
    assert latencies["per_level"] < latencies["root_only"]


def test_per_level_metrics_counters():
    fabric = _fabric("tree", 64)
    metrics = MetricsRegistry()
    run_placed_reduction(fabric, plan_placement(fabric, "per_level"),
                         _make_vectors(64), metrics=metrics)
    snap = metrics.snapshot("fabric")
    assert snap["fabric.level0.combines"] == 64
    assert snap["fabric.level0.partials_sent"] == 8
    assert snap["fabric.level1.combines"] == 8
    assert snap["fabric.level1.partials_sent"] == 0  # root finalizes


def test_trace_instants_emitted():
    from repro.obs import TraceCollector

    fabric = _fabric("tree", 16)
    fabric.env.trace = TraceCollector()
    run_placed_reduction(fabric, plan_placement(fabric, "per_level"),
                         _make_vectors(16))
    names = [event.name for event in fabric.env.trace.events
             if event.component == "fabric"]
    assert names.count("combine") == 16 + 2  # 16 host inputs + 2 partials
    assert names.count("finalize") == 1


def test_deterministic_across_runs():
    def once():
        fabric = _fabric("fat_tree", 64)
        return run_placed_reduction(
            fabric, plan_placement(fabric, "per_level"), _make_vectors(64))

    a, b = once(), once()
    assert a["latency_ps"] == b["latency_ps"]
    assert a["result"] == b["result"]

"""Template caches: warm (cache-shared) runs equal cold builds, bit for bit.

The caches in :mod:`repro.cluster.template` share config-pure
construction — built apps, system templates, fabric hop walks,
placement plans — across rate points, cases, and bench repeats.  Their
safety contract is proven here: a run through a warm cache is
bit-identical to a cold build for every registered application (the CI
matrix reruns this file on the per-block reference path, covering both
simulator paths), and every cached value that is mutable comes back as
an independent copy.
"""

import pytest

from repro.cluster.fabric import TopologySpec, build_fabric
from repro.cluster.placement import plan_placement
from repro.cluster.template import (cached_app, cached_service_app,
                                    clear_templates, client_hops,
                                    placement_plan, system_template,
                                    template_stats, _APP_CACHE_MAX)
from repro.runner.cache import encode_case
from repro.runner.harness import Cell, run_cell
from repro.runner.spec import APP_REGISTRY, make_spec
from repro.sim import Environment
from repro.traffic import ServiceSpec
from repro.traffic.service import _simulate

#: Small-but-real scale per registered app (reduce takes no scale).
SCALES = {"grep": 0.05, "select": 1 / 128, "hashjoin": 1 / 128,
          "mpeg": 0.1, "tar": 0.1, "sort": 1 / 512, "md5": 0.25,
          "reduce": None}


def small_spec(name):
    scale = SCALES[name]
    return make_spec(name) if scale is None else make_spec(name, scale=scale)


@pytest.fixture(autouse=True)
def cold_caches():
    clear_templates()
    yield
    clear_templates()


# ----------------------------------------------------------------------
# Bit-identity: warm == cold, every app, both datapaths (via CI matrix)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(APP_REGISTRY))
def test_closed_loop_warm_run_equals_cold_build(name):
    cell = Cell(spec=small_spec(name), case="active")
    cold = encode_case(run_cell(cell))        # miss: builds and caches
    warm = encode_case(run_cell(cell))        # hit: shares the app
    assert warm == cold
    stats = template_stats()
    assert stats["app_hits"] >= 1


@pytest.mark.parametrize("topology,hosts", [("single", 1), ("fat_tree", 4)])
def test_service_warm_run_equals_cold_build(topology, hosts):
    spec = ServiceSpec(app="grep", case="active", rate_rps=4000.0,
                       duration_s=0.005, num_streams=4, num_keys=16,
                       depth=16, workers=4, seed=5,
                       topology=topology, hosts=hosts)
    cold = _simulate(spec).to_dict()          # populates every cache
    warm = _simulate(spec).to_dict()          # runs entirely warm
    assert warm == cold
    stats = template_stats()
    assert stats["app_hits"] >= 1
    assert stats["system_hits"] >= 1


# ----------------------------------------------------------------------
# The individual caches
# ----------------------------------------------------------------------
def test_cached_app_shares_one_instance_per_spec_content():
    spec = small_spec("select")
    app = cached_app(spec)
    assert cached_app(make_spec("select", scale=SCALES["select"])) is app


def test_cached_app_is_bounded():
    for i in range(_APP_CACHE_MAX + 3):
        cached_app(make_spec("select", scale=(i + 1) / 2048))
    assert template_stats()["apps"] == _APP_CACHE_MAX


def test_cached_service_app_folds_rate_points_together():
    base = ServiceSpec(app="grep", case="active", rate_rps=1000.0)
    app_spec, app = cached_service_app(base)
    again_spec, again = cached_service_app(base.at_rate(9000.0))
    assert again_spec == app_spec
    assert again is app


def test_system_template_is_cached_and_value_pure():
    from repro.cluster import ClusterConfig, System

    config = ClusterConfig()
    template = system_template(config)
    assert system_template(ClusterConfig()) is template
    assert template.switch_config.num_ports >= (config.num_hosts
                                                + config.num_storage)
    direct = System(config)
    templated = System(config, template=template)
    assert [h.name for h in templated.hosts] == \
        [h.name for h in direct.hosts]
    assert [s.name for s in templated.storage_nodes] == \
        [s.name for s in direct.storage_nodes]
    assert templated.switch.config == direct.switch.config


def test_client_hops_match_a_direct_fabric_walk():
    kind, hosts = "fat_tree", 8
    fabric = build_fabric(Environment(), TopologySpec(kind=kind,
                                                      num_hosts=hosts))
    assert client_hops(kind, hosts) == fabric.client_hops()
    assert client_hops("single", 1) == [1]


def test_client_hops_returns_an_independent_list():
    first = client_hops("fat_tree", 8)
    first[0] = -99
    assert client_hops("fat_tree", 8)[0] != -99
    assert template_stats()["hops_hits"] >= 1


def test_placement_plan_is_cached_and_copied():
    fabric = build_fabric(Environment(),
                          TopologySpec(kind="tree", num_hosts=16))
    direct = plan_placement(fabric, "per_level")
    plan = placement_plan(fabric, "per_level")
    assert plan == direct
    # The cached value comes back as an independent copy: corrupting
    # one caller's plan must not leak into the next.
    victim = next(iter(plan.placements))
    plan.placements.pop(victim)
    again = placement_plan(fabric, "per_level")
    assert victim in again.placements
    assert template_stats()["plan_hits"] >= 1


def test_clear_templates_empties_everything():
    cached_app(small_spec("select"))
    client_hops("fat_tree", 8)
    clear_templates()
    stats = template_stats()
    assert stats["apps"] == stats["hops"] == stats["plans"] == \
        stats["systems"] == 0

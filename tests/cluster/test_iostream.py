"""Integration tests for ReadStream: ordering, overlap, accounting."""

import pytest

from repro.cluster import ClusterConfig, ReadStream, System
from repro.sim.units import ms, us


def drain_stream(system, stream, work_fn=None):
    """Consume every block; returns list of (start_ps, end_ps)."""
    spans = []

    def consumer(env):
        for _ in range(stream.num_blocks):
            arrival = yield from stream.next_block()
            yield from stream.consume_fully(arrival)
            spans.append((arrival.start_ps, env.now, arrival))
            if work_fn is not None:
                yield from work_fn(arrival)
            yield from stream.done_with(arrival)

    proc = system.env.process(consumer(system.env))
    system.env.run(until=proc)
    return spans


def test_blocks_arrive_in_order_with_correct_sizes():
    system = System(ClusterConfig())
    stream = ReadStream(system, system.host, total_bytes=100_000,
                        request_bytes=32_768)
    spans = drain_stream(system, stream)
    arrivals = [s[2] for s in spans]
    assert [a.index for a in arrivals] == [0, 1, 2, 3]
    assert [a.nbytes for a in arrivals] == [32_768, 32_768, 32_768, 1_696]
    assert sum(a.nbytes for a in arrivals) == 100_000


def test_block_offsets_are_sequential():
    system = System(ClusterConfig())
    stream = ReadStream(system, system.host, total_bytes=65_536,
                        request_bytes=32_768)
    spans = drain_stream(system, stream)
    assert [s[2].offset for s in spans] == [0, 32_768]


def test_first_block_pays_disk_positioning():
    system = System(ClusterConfig())
    stream = ReadStream(system, system.host, total_bytes=65_536,
                        request_bytes=32_768)
    spans = drain_stream(system, stream)
    first_start = spans[0][0]
    # seek (5 ms) + half rotation (3 ms) dominate the first arrival.
    assert first_start >= ms(8)


def test_sequential_blocks_skip_positioning():
    system = System(ClusterConfig())
    stream = ReadStream(system, system.host, total_bytes=65_536,
                        request_bytes=32_768)
    spans = drain_stream(system, stream)
    gap = spans[1][1] - spans[0][1]
    # Second block: no seek, just ~32 KB at 100 MB/s (~328 us) + overheads.
    assert gap < ms(1)


def test_os_request_cost_charged_to_host():
    system = System(ClusterConfig())
    stream = ReadStream(system, system.host, total_bytes=65_536,
                        request_bytes=32_768, request_cost="os")
    drain_stream(system, stream)
    # Two requests: 2 * (30 us + 32 * 0.27 us).
    expected = 2 * (us(30) + 32 * us(0.27))
    assert system.host.cpu.accounting.busy_ps == expected


def test_active_request_cost_is_smaller():
    normal = System(ClusterConfig())
    stream_n = ReadStream(normal, normal.host, total_bytes=65_536,
                          request_bytes=32_768, request_cost="os")
    drain_stream(normal, stream_n)

    active = System(ClusterConfig(active=True))
    stream_a = ReadStream(active, active.host, total_bytes=65_536,
                          request_bytes=32_768, to_switch=True,
                          request_cost="active")
    drain_stream(active, stream_a)
    assert (active.host.cpu.accounting.busy_ps
            < normal.host.cpu.accounting.busy_ps)


def test_host_traffic_counted_for_host_destination():
    system = System(ClusterConfig())
    stream = ReadStream(system, system.host, total_bytes=65_536,
                        request_bytes=32_768)
    drain_stream(system, stream)
    assert system.host.hca.traffic.bytes_in == 65_536


def test_no_host_traffic_for_switch_destination():
    system = System(ClusterConfig(active=True))
    stream = ReadStream(system, system.host, total_bytes=65_536,
                        request_bytes=32_768, to_switch=True,
                        request_cost="active")
    drain_stream(system, stream)
    assert system.host.hca.traffic.bytes_in == 0


def test_prefetch_overlaps_io_with_processing():
    """depth=2 must be faster than depth=1 when processing takes time."""
    def slow_work_factory(system):
        def work(arrival):
            yield from system.host.cpu.work(busy_cycles=400_000)  # 200 us
        return work

    times = {}
    for depth in (1, 2):
        system = System(ClusterConfig(prefetch_depth=depth))
        stream = ReadStream(system, system.host, total_bytes=512 * 1024,
                            request_bytes=64 * 1024, depth=depth)
        drain_stream(system, stream, work_fn=slow_work_factory(system))
        times[depth] = system.env.now
    assert times[2] < times[1]
    # 8 blocks x 200 us of hideable work: the gap should be substantial.
    assert times[1] - times[2] > us(1000)


def test_sync_depth1_serializes_io_and_processing():
    system = System(ClusterConfig())
    stream = ReadStream(system, system.host, total_bytes=128 * 1024,
                        request_bytes=64 * 1024, depth=1)
    io_spans = []

    def consumer(env):
        for _ in range(2):
            arrival = yield from stream.next_block()
            yield from stream.consume_fully(arrival)
            io_spans.append((arrival.start_ps, env.now))
            yield from system.host.cpu.work(busy_cycles=2_000_000)  # 1 ms
            yield from stream.done_with(arrival)

    proc = system.env.process(consumer(system.env))
    system.env.run(until=proc)
    # Second block's first data must arrive after first block processing
    # ended (1 ms after the first block's arrival completed).
    assert io_spans[1][0] >= io_spans[0][1] + ms(1)


def test_payloads_attached_to_blocks():
    system = System(ClusterConfig())
    stream = ReadStream(system, system.host, total_bytes=65_536,
                        request_bytes=32_768, payloads=["a", "b"])
    spans = drain_stream(system, stream)
    assert [s[2].payload for s in spans] == ["a", "b"]


def test_stream_validation():
    system = System(ClusterConfig())
    with pytest.raises(ValueError):
        ReadStream(system, system.host, total_bytes=0, request_bytes=1)
    with pytest.raises(ValueError):
        ReadStream(system, system.host, total_bytes=1, request_bytes=1,
                   depth=0)
    with pytest.raises(ValueError):
        ReadStream(system, system.host, total_bytes=1, request_bytes=1,
                   request_cost="bogus")

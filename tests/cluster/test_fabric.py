"""Unit tests for the declarative fabric layer."""

import pytest

from repro.cluster.fabric import (FatTreeFabric, TopologySpec, build_fabric,
                                  ecmp_spread)
from repro.cluster.topology import TopologyError
from repro.net import Message
from repro.sim import Environment


def test_tree_fabric_shape_and_validation():
    fabric = build_fabric(Environment(),
                          TopologySpec(kind="tree", num_hosts=128))
    fabric.validate()
    assert fabric.describe() == {"kind": "tree", "hosts": 128,
                                 "levels": [16, 2, 1], "switches": 19,
                                 "depth": 3}
    assert fabric.aggregation_root.name == fabric.levels[-1][0].name


def test_single_fabric_is_one_switch():
    fabric = build_fabric(Environment(),
                          TopologySpec(kind="single", num_hosts=24))
    fabric.validate()
    assert fabric.depth == 1
    assert len(fabric.switches) == 1
    assert len(fabric.hosts) == 24
    # The original spec is preserved for reporting.
    assert fabric.spec.kind == "single"


def test_fat_tree_shape():
    spec = TopologySpec(kind="fat_tree", num_hosts=64, hosts_per_leaf=8,
                        oversubscription=2.0)
    assert spec.num_leaves == 8
    assert spec.num_spines == 4
    fabric = build_fabric(Environment(), spec)
    fabric.validate()
    assert fabric.describe()["levels"] == [8, 4]


def test_fat_tree_explicit_spines_win():
    spec = TopologySpec(kind="fat_tree", num_hosts=32, hosts_per_leaf=8,
                        spines=7, oversubscription=2.0)
    assert spec.num_spines == 7
    fabric = build_fabric(Environment(), spec)
    fabric.validate()


def test_fat_tree_packing_errors():
    with pytest.raises(TopologyError, match="uplinks"):
        # 14 host ports + 8 spines > 16 ports.
        build_fabric(Environment(), TopologySpec(
            kind="fat_tree", num_hosts=64, hosts_per_leaf=14, spines=8))
    with pytest.raises(TopologyError, match="leaves exceed"):
        # 32 leaves > 16 spine ports.
        build_fabric(Environment(), TopologySpec(
            kind="fat_tree", num_hosts=256, hosts_per_leaf=8))


def test_unknown_kind_rejected():
    with pytest.raises(TopologyError, match="unknown topology kind"):
        TopologySpec(kind="torus", num_hosts=8)


def test_path_tracing_tree():
    fabric = build_fabric(Environment(),
                          TopologySpec(kind="tree", num_hosts=64))
    # Cross-leaf: up to the root and back down.
    hops = fabric.path("host0", "host63")
    assert len(hops) == 3
    assert hops[0] == fabric.leaf_of(fabric.hosts[0]).name
    assert hops[1] == fabric.aggregation_root.name
    # Same-leaf: one hop.
    assert len(fabric.path("host0", "host1")) == 1


def test_path_tracing_fat_tree_uses_one_spine_per_flow():
    fabric = build_fabric(Environment(), TopologySpec(
        kind="fat_tree", num_hosts=64, hosts_per_leaf=8))
    hops = fabric.path("host0", "host63")
    assert len(hops) == 3
    assert hops[1].startswith("spine")
    # Deterministic: the same flow always takes the same path.
    assert fabric.path("host0", "host63") == hops


def test_ecmp_spreads_flows_across_spines():
    fabric = build_fabric(Environment(), TopologySpec(
        kind="fat_tree", num_hosts=64, hosts_per_leaf=8))
    spread = ecmp_spread(fabric, "host63")
    assert len(spread) == 4  # 56 remote flows cover all 4 spines
    assert all(name.startswith("spine") for name in spread)


def test_fat_tree_delivers_cross_leaf_messages():
    env = Environment()
    fabric = build_fabric(env, TopologySpec(
        kind="fat_tree", num_hosts=32, hosts_per_leaf=8))
    src, dst = fabric.hosts[0], fabric.hosts[31]

    def sender(env):
        yield from src.hca.transmit(Message(src.name, dst.name, 256))

    def receiver(env):
        return (yield dst.hca.recv_queue.get())

    env.process(sender(env))
    proc = env.process(receiver(env))
    message = env.run(until=proc)
    assert message.size_bytes == 256
    spines = fabric.levels[1]
    assert sum(s.switch.stats.forwarded for s in spines) >= 1


def test_fat_tree_validate_catches_sabotage():
    fabric = build_fabric(Environment(), TopologySpec(
        kind="fat_tree", num_hosts=32, hosts_per_leaf=8))
    assert isinstance(fabric, FatTreeFabric)
    fabric.validate()
    # Point a spine's route for host0 at an unconnected port.
    spine = fabric.levels[1][0]
    spine.switch.routing.add("host0", spine.switch.config.num_ports - 1)
    with pytest.raises(TopologyError, match="unconnected-port"):
        fabric.validate()


def test_non_packing_host_count_fills_last_leaf_partially():
    fabric = build_fabric(Environment(), TopologySpec(
        kind="fat_tree", num_hosts=20, hosts_per_leaf=8))
    fabric.validate()
    leaf_sizes = [len(leaf.hosts) for leaf in fabric.levels[0]]
    assert leaf_sizes == [8, 8, 4]

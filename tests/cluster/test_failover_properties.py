"""Property tests: routing after a single fail-stop, on random shapes.

The failover invariant the repair machinery leans on: after any single
*non-partitioning* death (one spine, one leaf uplink, one leaf) the
surviving hosts remain all-pairs routable over the survivors, with
loop-free paths that never transit a dead component.  Conversely a
death that genuinely splits the fabric (a tree's aggregation root)
must be *reported* as a partition, never silently routed around.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.cluster.fabric import (FabricPartitioned, TopologySpec,
                                  build_fabric)
from repro.sim import Environment


def _fat_tree_spec(draw):
    leaves = draw(st.integers(min_value=2, max_value=6))
    hosts_per_leaf = draw(st.sampled_from([2, 4, 8]))
    spines = draw(st.integers(min_value=2, max_value=4))
    return TopologySpec(kind="fat_tree", num_hosts=leaves * hosts_per_leaf,
                        hosts_per_leaf=hosts_per_leaf, spines=spines)


def _build(spec):
    env = Environment()
    return build_fabric(env, spec)


def _assert_all_pairs_routable(fabric, dead=()):
    """Every live-host pair routes loop-free over survivors only."""
    dead = set(dead)
    live_hosts = [host for host in fabric.hosts
                  if not host.hca._tx_link.is_down]
    assert live_hosts, "a single death must never kill every host"
    for src in live_hosts:
        for dst in live_hosts:
            if src is dst:
                continue
            hops = fabric.path(src.name, dst.name)
            assert len(hops) == len(set(hops)), \
                f"loop in {src.name}->{dst.name}: {hops}"
            assert not dead & set(hops), \
                f"{src.name}->{dst.name} transits a corpse: {hops}"
            assert hops[0] == fabric.leaf_of(src).name
            assert hops[-1] == fabric.leaf_of(dst).name


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_single_spine_down_keeps_all_pairs_routable(data):
    spec = _fat_tree_spec(data.draw)
    fabric = _build(spec)
    victim = data.draw(st.sampled_from(
        [node.name for node in fabric.levels[-1]]))
    assert fabric.fail_switch(victim, detect=True)
    fabric.check_partition()
    _assert_all_pairs_routable(fabric, dead={victim})


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_single_leaf_uplink_down_keeps_all_pairs_routable(data):
    spec = _fat_tree_spec(data.draw)
    fabric = _build(spec)
    leaf = data.draw(st.sampled_from(
        [node.name for node in fabric.levels[0]]))
    spine = data.draw(st.sampled_from(
        [node.name for node in fabric.levels[-1]]))
    assert fabric.fail_link(leaf, spine, detect=True)
    fabric.check_partition()
    # Only one direction of one wire died: no component is a corpse,
    # but completeness and loop-freedom must still hold everywhere.
    _assert_all_pairs_routable(fabric)


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_single_leaf_down_strands_only_its_own_hosts(data):
    spec = _fat_tree_spec(data.draw)
    fabric = _build(spec)
    victim = data.draw(st.sampled_from(
        [node.name for node in fabric.levels[0]]))
    assert fabric.fail_switch(victim, detect=True)
    fabric.check_partition()    # survivors still fully connected
    _assert_all_pairs_routable(fabric, dead={victim})


@settings(max_examples=15, deadline=None)
@given(hosts_per_leaf=st.sampled_from([2, 4]),
       leaves=st.integers(min_value=2, max_value=6),
       radix=st.sampled_from([2, 4]))
def test_tree_root_death_is_reported_not_routed_around(hosts_per_leaf,
                                                       leaves, radix):
    spec = TopologySpec(kind="tree", num_hosts=leaves * hosts_per_leaf,
                        hosts_per_leaf=hosts_per_leaf, radix=radix)
    fabric = _build(spec)
    root = fabric.aggregation_root.name
    assert fabric.fail_switch(root, detect=True)
    if len(fabric.levels[0]) == 1:
        # Degenerate shape: the root IS the only leaf; nobody survives
        # but there is no live pair to partition either.
        return
    with pytest.raises(FabricPartitioned):
        fabric.check_partition()

"""Property tests for the I/O stream and the bulk pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, ReadStream, System
from repro.net import HEADER_BYTES, MTU, Message


@given(total=st.integers(min_value=1, max_value=4 * 1024 * 1024),
       request=st.sampled_from([4096, 32768, 65536, 262144]))
@settings(max_examples=30, deadline=None)
def test_property_blocks_tile_the_stream_exactly(total, request):
    """Block sizes are positive, at most the request size, and sum to
    the stream total; offsets are contiguous."""
    system = System(ClusterConfig())
    stream = ReadStream(system, system.host, total_bytes=total,
                        request_bytes=request)
    sizes = [stream._block_size(i) for i in range(stream.num_blocks)]
    assert all(0 < s <= request for s in sizes)
    assert sum(sizes) == total
    assert sizes[:-1] == [request] * (stream.num_blocks - 1)


@given(size=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=60, deadline=None)
def test_property_packetize_conserves_bytes(size):
    """Packet payloads sum to the message size; only the last packet is
    marked last; sequence numbers are dense."""
    message = Message("a", "b", size_bytes=size)
    packets = message.packetize()
    assert sum(p.payload_bytes for p in packets) == size
    assert [p.seq for p in packets] == list(range(len(packets)))
    assert [p.last for p in packets] == [False] * (len(packets) - 1) + [True]
    assert all(p.payload_bytes <= MTU for p in packets)
    assert message.wire_bytes == size + len(packets) * HEADER_BYTES
    assert all(p.message_bytes == size for p in packets)


@given(request=st.sampled_from([8192, 65536, 262144]),
       depth=st.integers(min_value=1, max_value=4))
@settings(max_examples=10, deadline=None)
def test_property_deeper_streams_never_slower(request, depth):
    """For a fixed workload, a deeper stream finishes no later than a
    synchronous one."""
    def run(d):
        system = System(ClusterConfig())
        stream = ReadStream(system, system.host, total_bytes=512 * 1024,
                            request_bytes=request, depth=d)

        def consumer(env):
            for _ in range(stream.num_blocks):
                arrival = yield from stream.next_block()
                yield from stream.consume_fully(arrival)
                yield from system.host.cpu.work(busy_cycles=100_000)
                yield from stream.done_with(arrival)

        proc = system.env.process(consumer(system.env))
        system.env.run(until=proc)
        return system.env.now

    assert run(depth) <= run(1)


def test_traffic_conservation_through_pipeline():
    """Bytes accounted at the host equal bytes served by storage."""
    system = System(ClusterConfig())
    stream = ReadStream(system, system.host, total_bytes=300_000,
                        request_bytes=65536)

    def consumer(env):
        for _ in range(stream.num_blocks):
            arrival = yield from stream.next_block()
            yield from stream.consume_fully(arrival)
            yield from stream.done_with(arrival)

    proc = system.env.process(consumer(system.env))
    system.env.run(until=proc)
    assert system.host.hca.traffic.bytes_in == 300_000
    assert system.storage.disks.bytes_read == 300_000
    assert system.storage.tca.traffic.bytes_out == 300_000


@given(nbytes=st.integers(min_value=1, max_value=10_000_000))
@settings(max_examples=40, deadline=None)
def test_property_tails_positive_and_ordered(nbytes):
    """First-data tail exceeds last-data tail by the first MTU's disk
    time; host destinations cost strictly more than switch ones."""
    system = System(ClusterConfig())
    for to_switch in (True, False):
        first = system.first_data_tail_ps(to_switch)
        last = system.last_data_tail_ps(to_switch)
        assert first > last > 0
    assert (system.first_data_tail_ps(False)
            > system.first_data_tail_ps(True))

"""Tests for the fabric validator."""

import pytest

from repro.cluster import ClusterConfig, System
from repro.cluster.topology import SwitchTree
from repro.cluster.validation import (
    FabricIssue,
    assert_fabric_sound,
    validate_fabric,
)
from repro.net import ChannelAdapter, Link
from repro.sim import Environment
from repro.switch import BaseSwitch


def test_system_fabric_is_sound():
    system = System(ClusterConfig(num_hosts=3, num_storage=2))
    adapters = ([h.hca for h in system.hosts]
                + [s.tca for s in system.storage_nodes])
    assert validate_fabric([system.switch], adapters) == []


def test_reduction_tree_is_sound():
    tree = SwitchTree(Environment(), num_hosts=64)
    switches = [node.switch for node in tree.switches]
    adapters = [host.hca for host in tree.hosts]
    assert validate_fabric(switches, adapters) == []
    assert_fabric_sound(switches, adapters)


def test_missing_route_detected():
    env = Environment()
    switch = BaseSwitch(env, "sw0")
    adapter = ChannelAdapter(env, "ep0")
    to_switch = Link(env, "ep0->sw0")
    from_switch = Link(env, "sw0->ep0")
    adapter.attach(tx_link=to_switch, rx_link=from_switch)
    switch.connect(0, tx_link=from_switch, rx_link=to_switch)
    # No routing entry added.
    issues = validate_fabric([switch], [adapter])
    assert any(issue.kind == "unreachable" for issue in issues)


def test_route_to_unconnected_port_detected():
    env = Environment()
    switch = BaseSwitch(env, "sw0")
    adapter = ChannelAdapter(env, "ep0")
    to_switch = Link(env, "ep0->sw0")
    from_switch = Link(env, "sw0->ep0")
    adapter.attach(tx_link=to_switch, rx_link=from_switch)
    switch.connect(0, tx_link=from_switch, rx_link=to_switch)
    switch.routing.add("ep0", 5)  # wrong, unconnected port
    issues = validate_fabric([switch], [adapter])
    assert any(issue.kind == "unconnected-port" for issue in issues)


def test_routing_loop_detected():
    env = Environment()
    sw0 = BaseSwitch(env, "sw0")
    sw1 = BaseSwitch(env, "sw1")
    a = Link(env, "sw0->sw1")
    b = Link(env, "sw1->sw0")
    sw0.connect(0, tx_link=a, rx_link=b)
    sw1.connect(0, tx_link=b, rx_link=a)
    # Each switch points at the other for 'ghost'.
    sw0.routing.add("ghost", 0)
    sw1.routing.add("ghost", 0)
    ghost = ChannelAdapter(env, "ghost")
    issues = validate_fabric([sw0, sw1], [ghost])
    assert any(issue.kind == "loop" for issue in issues)


def test_assert_raises_with_details():
    env = Environment()
    switch = BaseSwitch(env, "sw0")
    adapter = ChannelAdapter(env, "ep0")
    with pytest.raises(ValueError, match="unreachable"):
        assert_fabric_sound([switch], [adapter])


def test_issue_str_is_readable():
    issue = FabricIssue("loop", "sw0", "hostX", "path exceeds 3 hops")
    text = str(issue)
    assert "loop" in text and "sw0" in text and "hostX" in text

"""Unit tests for ComputeNode and StorageNode assemblies."""

import pytest

from repro.cluster import ClusterConfig, System
from repro.cluster.node import ComputeNode, StorageNode
from repro.sim import Environment
from repro.sim.units import us


def test_compute_node_wires_cpu_hca_os():
    node = ComputeNode(Environment(), "host0", ClusterConfig())
    assert node.cpu.clock.period_ps == 500
    assert node.hca.node_id == "host0"
    assert node.hierarchy.l2 is not None


def test_compute_node_database_caches():
    node = ComputeNode(Environment(), "h", ClusterConfig(
        database_scaled_caches=True, cache_scale_divisor=2))
    assert node.hierarchy.l1d.config.size_bytes == 4 * 1024
    assert node.hierarchy.l2.config.size_bytes == 32 * 1024


def test_os_request_charges_paper_constants():
    env = Environment()
    node = ComputeNode(env, "h", ClusterConfig())

    def worker(env):
        yield from node.os_request(64 * 1024)

    env.process(worker(env))
    env.run()
    assert node.cpu.accounting.busy_ps == us(30) + 64 * us(0.27)
    assert node.os.requests == 1


def test_active_request_is_cheap_and_configurable():
    env = Environment()
    node = ComputeNode(env, "h", ClusterConfig(active_request_cost_ps=us(2)))

    def worker(env):
        yield from node.active_request()

    env.process(worker(env))
    env.run()
    assert node.cpu.accounting.busy_ps == us(2)


def test_storage_node_components():
    node = StorageNode(Environment(), "s0", ClusterConfig(num_disks=2))
    assert len(node.disks.disks) == 2
    assert node.scsi.config.bandwidth_bytes_per_s == 320e6
    assert node.tca.node_id == "s0"


def test_serve_read_orders_overheads_before_transfer():
    env = Environment()
    node = StorageNode(env, "s0", ClusterConfig())
    started_at = {}

    def worker(env):
        started = env.event()
        done = env.process(node.serve_read(0, 1024, started=started))
        yield started
        started_at["flow"] = env.now
        yield done
        started_at["done"] = env.now

    env.process(worker(env))
    env.run()
    # Data flow begins only after TCA (2 us) + SCSI (1.5 us) + positioning.
    assert started_at["flow"] >= us(3.5)
    assert started_at["done"] > started_at["flow"]


def test_single_disk_configuration():
    system = System(ClusterConfig(num_disks=1))
    assert system.storage.disks.aggregate_bandwidth == pytest.approx(50e6)


def test_nodes_share_environment():
    system = System(ClusterConfig(num_hosts=2))
    assert system.hosts[0].env is system.env
    assert system.storage.env is system.env

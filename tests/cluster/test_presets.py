"""Tests for configuration presets and the benchmark CLI."""

import pytest

from repro.cluster.presets import (
    PRESETS,
    balanced_2006,
    fast_fabric,
    fast_storage,
    fast_switch_cpu,
    get_preset,
    paper_2003,
)


def test_paper_preset_is_the_default_config():
    from repro.cluster import ClusterConfig
    assert paper_2003() == ClusterConfig()


def test_fast_fabric_scales_links_and_crossbar():
    config = fast_fabric()
    assert config.link.bandwidth_bytes_per_s == 10e9
    assert config.active_switch.crossbar_bandwidth_bytes_per_s == 10e9
    assert config.disk.bandwidth_bytes_per_s == 50e6  # unchanged


def test_fast_storage_scales_disks_only():
    config = fast_storage()
    assert config.disk.bandwidth_bytes_per_s == 400e6
    assert config.link.bandwidth_bytes_per_s == 1e9


def test_fast_switch_cpu_reaches_host_parity():
    config = fast_switch_cpu()
    assert config.active_switch.cpu_freq_hz == 2e9


def test_balanced_2006_touches_all_three():
    config = balanced_2006()
    assert config.link.bandwidth_bytes_per_s == 2e9
    assert config.active_switch.cpu_freq_hz == 1e9


def test_overrides_apply():
    config = fast_storage(num_hosts=4, prefetch_depth=2)
    assert config.num_hosts == 4
    assert config.prefetch_depth == 2
    assert config.disk.bandwidth_bytes_per_s == 400e6


def test_get_preset_by_name():
    assert get_preset("paper_2003") == paper_2003()
    with pytest.raises(KeyError):
        get_preset("warp_drive")


def test_registry_complete():
    assert set(PRESETS) == {"paper_2003", "fast_fabric", "fast_storage",
                            "fast_switch_cpu", "balanced_2006", "chaos_2003",
                            "failstop_2003", "service_2003"}


def test_presets_build_working_systems():
    from repro.cluster import System
    for name in PRESETS:
        system = System(get_preset(name, active=True))
        assert system.switch is not None


# ----------------------------------------------------------------------
# The CLI
# ----------------------------------------------------------------------
def test_cli_lists_apps(capsys):
    from repro.apps.__main__ import main
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "grep" in out and "md5" in out


def test_cli_runs_a_benchmark(capsys):
    from repro.apps.__main__ import main
    assert main(["grep", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "active speedup" in out
    assert "n-HP" in out


def test_cli_preset_changes_outcome(capsys):
    from repro.apps.__main__ import main
    assert main(["grep", "--scale", "0.1", "--preset", "fast_storage"]) == 0
    out = capsys.readouterr().out
    assert "active speedup" in out

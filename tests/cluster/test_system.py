"""Unit tests for cluster configuration and system assembly."""

import pytest

from repro.cluster import ClusterConfig, System, four_cases
from repro.switch import ActiveSwitch, BaseSwitch


def test_default_config_is_normal_case():
    config = ClusterConfig()
    assert config.case_label == "normal"
    assert not config.active
    assert config.prefetch_depth == 1


def test_case_labels():
    base = ClusterConfig()
    labels = [label for label, _ in four_cases(base)]
    assert labels == ["normal", "normal+pref", "active", "active+pref"]
    for label, config in four_cases(base):
        assert config.case_label == label


def test_with_case_sets_depth():
    config = ClusterConfig().with_case(active=True, prefetch=True)
    assert config.active
    assert config.prefetch_depth == 2


def test_with_case_propagates_cpu_count():
    base = ClusterConfig(num_switch_cpus=4)
    config = base.with_case(active=True, prefetch=False)
    assert config.active_switch.num_cpus == 4


def test_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(num_hosts=0)
    with pytest.raises(ValueError):
        ClusterConfig(prefetch_depth=0)
    with pytest.raises(ValueError):
        ClusterConfig(num_switch_cpus=3)


def test_normal_system_uses_base_switch():
    system = System(ClusterConfig(active=False))
    assert type(system.switch) is BaseSwitch
    assert system.switch_cpu_pool is None


def test_active_system_uses_active_switch():
    system = System(ClusterConfig(active=True))
    assert isinstance(system.switch, ActiveSwitch)
    assert len(system.switch_cpu_pool.items) == 1


def test_active_system_multiple_cpus():
    system = System(ClusterConfig(num_switch_cpus=4).with_case(True, False))
    assert len(system.switch.cpus) == 4
    assert len(system.switch_cpu_pool.items) == 4


def test_system_builds_requested_nodes():
    system = System(ClusterConfig(num_hosts=4, num_storage=2))
    assert [h.name for h in system.hosts] == [
        "host0", "host1", "host2", "host3"]
    assert [s.name for s in system.storage_nodes] == ["storage0", "storage1"]


def test_switch_grows_ports_when_needed():
    system = System(ClusterConfig(num_hosts=8, num_storage=4))
    assert system.switch.config.num_ports >= 12


def test_routing_configured_for_all_nodes():
    system = System(ClusterConfig(num_hosts=2, num_storage=1))
    assert "host0" in system.switch.routing
    assert "host1" in system.switch.routing
    assert "storage0" in system.switch.routing


def test_request_path_latency_reasonable():
    system = System(ClusterConfig())
    # Control message: sub-microsecond (dominated by 100 ns routing
    # latency + HCA packet processing).
    assert 0 < system.request_path_ps() < 1_000_000


def test_database_scaled_caches_flag():
    system = System(ClusterConfig(database_scaled_caches=True))
    assert system.host.hierarchy.l2.config.size_bytes == 64 * 1024


def test_first_tail_larger_for_host_destination():
    system = System(ClusterConfig())
    assert (system.first_data_tail_ps(to_switch=False)
            > system.first_data_tail_ps(to_switch=True))


def test_process_on_switch_requires_active():
    system = System(ClusterConfig(active=False))
    with pytest.raises(RuntimeError):
        list(system.process_on_switch(100, 0))


def test_switch_to_host_bulk_accounts_traffic():
    system = System(ClusterConfig(active=True))

    def mover(env):
        yield from system.switch_to_host_bulk(system.host, 10_000)

    system.env.process(mover(system.env))
    system.env.run()
    assert system.host.hca.traffic.bytes_in == 10_000


def test_host_to_host_bulk_moves_and_accounts():
    system = System(ClusterConfig(num_hosts=2))
    a, b = system.hosts

    def mover(env):
        yield from system.host_to_host_bulk(a, b, 1024)
        return env.now

    proc = system.env.process(mover(system.env))
    elapsed = system.env.run(until=proc)
    assert elapsed > 0
    assert a.hca.traffic.bytes_out == 1024
    assert b.hca.traffic.bytes_in == 1024


def test_process_on_switch_charges_busy_and_returns_cpu():
    system = System(ClusterConfig(active=True))

    def worker(env):
        yield from system.process_on_switch(cycles=1000, stall_ps=0)

    system.env.process(worker(system.env))
    system.env.run()
    cpu = system.switch.cpus[0]
    assert cpu.accounting.busy_ps == 1000 * 2000  # 1000 cycles at 2 ns
    assert len(system.switch_cpu_pool.items) == 1  # returned to pool


def test_process_on_switch_waits_for_arrival_as_stall():
    system = System(ClusterConfig(active=True))
    env = system.env
    arrival_end = env.event()

    def trigger(env):
        yield env.timeout(1_000_000)
        arrival_end.succeed()

    def worker(env):
        yield from system.process_on_switch(
            cycles=100, stall_ps=0, arrival_end_event=arrival_end)
        return env.now

    env.process(trigger(env))
    proc = env.process(worker(env))
    finished = env.run(until=proc)
    assert finished >= 1_000_000
    assert system.switch.cpus[0].accounting.stall_ps > 0

"""Unit and property tests for the Zipf key generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import zipf
from repro.workloads.datamation import KEY_BYTES


def test_cdf_is_monotone_and_normalized():
    cdf = zipf.zipf_cdf(100, 1.0)
    assert all(a <= b for a, b in zip(cdf, cdf[1:]))
    assert cdf[-1] == pytest.approx(1.0)


def test_exponent_zero_is_uniform():
    cdf = zipf.zipf_cdf(10, 0.0)
    assert cdf[0] == pytest.approx(0.1)
    assert cdf[4] == pytest.approx(0.5)


def test_higher_exponent_concentrates_mass():
    flat = zipf.zipf_cdf(100, 0.0)
    steep = zipf.zipf_cdf(100, 1.5)
    assert steep[9] > flat[9]  # top-10 ranks hold more mass


def test_keys_have_right_shape():
    keys = zipf.generate_zipf_keys(500, exponent=1.0)
    assert len(keys) == 500
    assert all(len(k) == KEY_BYTES for k in keys)


def test_deterministic_under_seed():
    a = zipf.generate_zipf_keys(200, exponent=1.0, seed=7)
    b = zipf.generate_zipf_keys(200, exponent=1.0, seed=7)
    assert a == b
    c = zipf.generate_zipf_keys(200, exponent=1.0, seed=8)
    assert a != c


def test_skew_increases_partition_imbalance():
    uniform = zipf.generate_zipf_keys(8000, exponent=0.0)
    skewed = zipf.generate_zipf_keys(8000, exponent=1.2)
    assert (zipf.partition_imbalance(skewed, 8)
            > zipf.partition_imbalance(uniform, 8))


def test_uniform_nearly_balanced():
    keys = zipf.generate_zipf_keys(16000, exponent=0.0)
    assert zipf.partition_imbalance(keys, 4) < 1.1


def test_validation():
    with pytest.raises(ValueError):
        zipf.zipf_cdf(0, 1.0)
    with pytest.raises(ValueError):
        zipf.zipf_cdf(10, -1.0)
    with pytest.raises(ValueError):
        zipf.generate_zipf_keys(0)
    with pytest.raises(ValueError):
        zipf.partition_imbalance([], 0)


@given(exponent=st.floats(min_value=0.0, max_value=2.0),
       num=st.integers(min_value=1, max_value=200))
@settings(max_examples=40, deadline=None)
def test_property_cdf_valid_distribution(exponent, num):
    cdf = zipf.zipf_cdf(num, exponent)
    assert len(cdf) == num
    assert cdf[-1] == pytest.approx(1.0)
    assert all(0 < v <= 1.0 + 1e-9 for v in cdf)


@given(num_nodes=st.integers(min_value=1, max_value=16))
@settings(max_examples=20, deadline=None)
def test_property_imbalance_bounds(num_nodes):
    keys = zipf.generate_zipf_keys(2000, exponent=0.8, seed=5)
    imbalance = zipf.partition_imbalance(keys, num_nodes)
    assert 1.0 - 1e-9 <= imbalance <= num_nodes + 1e-9

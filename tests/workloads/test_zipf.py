"""Unit and property tests for the Zipf key generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import zipf
from repro.workloads.datamation import KEY_BYTES


def test_cdf_is_monotone_and_normalized():
    cdf = zipf.zipf_cdf(100, 1.0)
    assert all(a <= b for a, b in zip(cdf, cdf[1:]))
    assert cdf[-1] == pytest.approx(1.0)


def test_exponent_zero_is_uniform():
    cdf = zipf.zipf_cdf(10, 0.0)
    assert cdf[0] == pytest.approx(0.1)
    assert cdf[4] == pytest.approx(0.5)


def test_higher_exponent_concentrates_mass():
    flat = zipf.zipf_cdf(100, 0.0)
    steep = zipf.zipf_cdf(100, 1.5)
    assert steep[9] > flat[9]  # top-10 ranks hold more mass


def test_keys_have_right_shape():
    keys = zipf.generate_zipf_keys(500, exponent=1.0)
    assert len(keys) == 500
    assert all(len(k) == KEY_BYTES for k in keys)


def test_deterministic_under_seed():
    a = zipf.generate_zipf_keys(200, exponent=1.0, seed=7)
    b = zipf.generate_zipf_keys(200, exponent=1.0, seed=7)
    assert a == b
    c = zipf.generate_zipf_keys(200, exponent=1.0, seed=8)
    assert a != c


def test_skew_increases_partition_imbalance():
    uniform = zipf.generate_zipf_keys(8000, exponent=0.0)
    skewed = zipf.generate_zipf_keys(8000, exponent=1.2)
    assert (zipf.partition_imbalance(skewed, 8)
            > zipf.partition_imbalance(uniform, 8))


def test_uniform_nearly_balanced():
    keys = zipf.generate_zipf_keys(16000, exponent=0.0)
    assert zipf.partition_imbalance(keys, 4) < 1.1


def test_validation():
    with pytest.raises(ValueError):
        zipf.zipf_cdf(0, 1.0)
    with pytest.raises(ValueError):
        zipf.zipf_cdf(10, -1.0)
    with pytest.raises(ValueError):
        zipf.generate_zipf_keys(0)
    with pytest.raises(ValueError):
        zipf.partition_imbalance([], 0)


@given(exponent=st.floats(min_value=0.0, max_value=2.0),
       num=st.integers(min_value=1, max_value=200))
@settings(max_examples=40, deadline=None)
def test_property_cdf_valid_distribution(exponent, num):
    cdf = zipf.zipf_cdf(num, exponent)
    assert len(cdf) == num
    assert cdf[-1] == pytest.approx(1.0)
    assert all(0 < v <= 1.0 + 1e-9 for v in cdf)


@given(num_nodes=st.integers(min_value=1, max_value=16))
@settings(max_examples=20, deadline=None)
def test_property_imbalance_bounds(num_nodes):
    keys = zipf.generate_zipf_keys(2000, exponent=0.8, seed=5)
    imbalance = zipf.partition_imbalance(keys, num_nodes)
    assert 1.0 - 1e-9 <= imbalance <= num_nodes + 1e-9


# ----------------------------------------------------------------------
# Pinned-seed regression: the traffic layer reuses this sampler for
# client key popularity, and the runner fingerprints workloads by
# content — any drift in the inverse-CDF draw or the seeded scatter
# silently changes both.  These values were produced by the current
# sampler and must never change for fixed seeds.
# ----------------------------------------------------------------------
_PINNED = {
    31: ["b02a6848a1b6f8000000", "7cd0c01a12e560000000",
         "000c92ab3c1b23400000", "8ef0afd8c3ff78000000",
         "2c8bdb3d9d96f4000000", "60d761585cab30000000",
         "98df99839a9740000000", "98df99839a9740000000"],
    7: ["53e7af6b1c4c68000000", "42827ddaca9fa4000000",
        "84404bc0c83d38000000", "84404bc0c83d38000000",
        "d1ac2863951d78000000", "aecbc53263d178000000",
        "693be2a8c7b684000000", "014b9ad0f953a6e00000"],
}


@pytest.mark.parametrize("seed", sorted(_PINNED))
def test_pinned_inverse_cdf_sampler_output(seed):
    keys = zipf.generate_zipf_keys(8, exponent=1.1, num_values=64,
                                   seed=seed)
    assert [k.hex() for k in keys] == _PINNED[seed]


def test_pinned_cdf_values():
    # The CDF itself is pure arithmetic; pin it exactly (no approx) so
    # a reordering of the accumulation is caught too.
    assert zipf.zipf_cdf(5, 1.0) == [
        0.43795620437956206, 0.6569343065693432, 0.8029197080291971,
        0.9124087591240875, 1.0]

"""Property tests for workload generators (shape invariants)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import datamation, files, mpeg, records, text


@given(total=st.integers(min_value=1024, max_value=200_000))
@settings(max_examples=20, deadline=None)
def test_property_mpeg_streams_parse_back(total):
    stream = mpeg.generate_stream(total_bytes=total)
    parsed = mpeg.parse_frames(stream.data)
    assert len(parsed) == len(stream.frames)
    assert sum(f.total_bytes for f in parsed) == len(stream.data)
    # Frames tile the stream with no gaps.
    offset = 0
    for frame in parsed:
        assert frame.offset == offset
        offset += frame.total_bytes


@given(total=st.integers(min_value=10_000, max_value=300_000),
       matches=st.integers(min_value=1, max_value=20))
@settings(max_examples=15, deadline=None)
def test_property_text_match_count_exact(total, matches):
    data = text.generate_text(total_bytes=total, match_lines=matches)
    assert len(data) == total
    assert text.count_matching_lines(data) == matches


@given(size=st.integers(min_value=records.RECORD_BYTES * 8,
                        max_value=records.RECORD_BYTES * 4000),
       selectivity=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=20, deadline=None)
def test_property_select_table_selectivity(size, selectivity):
    table = records.generate_select_table(size, selectivity=selectivity)
    matching = sum(1 for k in table.keys
                   if records.SELECT_LOW <= k < records.SELECT_HIGH)
    fraction = matching / table.num_records
    # Binomial sampling noise: allow a generous band, widened for tiny
    # tables where a fixed 0.2 is under five standard deviations.
    band = max(0.2, 5 * math.sqrt(0.25 / table.num_records))
    assert abs(fraction - selectivity) < band


@given(total=st.integers(min_value=2048, max_value=10_000_000))
@settings(max_examples=20, deadline=None)
def test_property_filesets_conserve_bytes(total):
    fileset = files.generate_fileset(total_bytes=total)
    assert files.total_size(fileset) == total
    assert all(f.size > 0 for f in fileset)
    assert len({f.name for f in fileset}) == len(fileset)


@given(count=st.integers(min_value=1, max_value=2000),
       nodes=st.integers(min_value=1, max_value=32))
@settings(max_examples=20, deadline=None)
def test_property_datamation_partition_total(count, nodes):
    keys = datamation.generate_keys(count)
    counts = datamation.partition_counts(keys, nodes)
    assert sum(counts) == count
    assert len(counts) == nodes


@given(pass_fraction=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=15, deadline=None)
def test_property_s_table_never_false_negative(pass_fraction):
    """Keys drawn as 'passing' really exist in R (the bit-vector can
    only add false positives, never lose true matches)."""
    r = records.generate_r_table(32 * records.RECORD_BYTES * 4)
    s = records.generate_s_table(64 * records.RECORD_BYTES * 4, r,
                                 pass_fraction=pass_fraction)
    r_keys = set(r.keys)
    true_matches = sum(1 for k in s.keys if k in r_keys)
    expected = pass_fraction * s.num_records
    assert abs(true_matches - expected) <= max(20, 0.3 * s.num_records)

"""Unit tests for the synthetic workload generators."""

import pytest

from repro.workloads import datamation, files, mpeg, records, text


# ----------------------------------------------------------------------
# MPEG streams
# ----------------------------------------------------------------------
def test_mpeg_stream_size():
    stream = mpeg.generate_stream(total_bytes=200_000)
    assert abs(stream.total_bytes - 200_000) < 16 * 1024


def test_mpeg_p_fraction_near_target():
    stream = mpeg.generate_stream(total_bytes=500_000)
    assert stream.byte_fraction(mpeg.FRAME_P) == pytest.approx(0.635, abs=0.05)


def test_mpeg_parse_roundtrip():
    stream = mpeg.generate_stream(total_bytes=100_000)
    parsed = mpeg.parse_frames(stream.data)
    assert [(f.frame_type, f.offset, f.total_bytes) for f in parsed] == \
        [(f.frame_type, f.offset, f.total_bytes) for f in stream.frames]


def test_mpeg_deterministic():
    a = mpeg.generate_stream(total_bytes=50_000, seed=1)
    b = mpeg.generate_stream(total_bytes=50_000, seed=1)
    assert a.data == b.data


def test_mpeg_parse_rejects_garbage():
    with pytest.raises(ValueError):
        mpeg.parse_frames(b"\xff" * 100)


def test_mpeg_validation():
    with pytest.raises(ValueError):
        mpeg.generate_stream(total_bytes=4)
    with pytest.raises(ValueError):
        mpeg.generate_stream(total_bytes=1000, p_fraction=1.5)


# ----------------------------------------------------------------------
# Database tables
# ----------------------------------------------------------------------
def test_r_table_distinct_keys():
    table = records.generate_r_table(64 * 1024)
    assert table.num_records == 512
    assert len(set(table.keys)) == 512


def test_s_table_pass_fraction():
    r = records.generate_r_table(64 * 1024)
    s = records.generate_s_table(1024 * 1024, r, pass_fraction=0.24)
    r_keys = set(r.keys)
    passing = sum(1 for k in s.keys if k in r_keys)
    assert passing / s.num_records == pytest.approx(0.24, abs=0.03)


def test_s_table_nonpassing_keys_absent_from_r():
    r = records.generate_r_table(16 * 1024)
    s = records.generate_s_table(64 * 1024, r, pass_fraction=0.0)
    assert not set(s.keys) & set(r.keys)


def test_select_table_selectivity():
    table = records.generate_select_table(1024 * 1024, selectivity=0.25)
    matching = sum(1 for k in table.keys
                   if records.SELECT_LOW <= k < records.SELECT_HIGH)
    assert matching / table.num_records == pytest.approx(0.25, abs=0.03)


def test_table_size_accounting():
    table = records.generate_select_table(128 * 1024)
    assert table.size_bytes == 128 * 1024
    assert records.records_per_block(64 * 1024) == 512


def test_table_validation():
    with pytest.raises(ValueError):
        records.generate_r_table(10)
    r = records.generate_r_table(16 * 1024)
    with pytest.raises(ValueError):
        records.generate_s_table(64 * 1024, r, pass_fraction=2.0)


# ----------------------------------------------------------------------
# Grep text
# ----------------------------------------------------------------------
def test_text_exact_match_count():
    data = text.generate_text(total_bytes=100_000, match_lines=16)
    assert text.count_matching_lines(data) == 16


def test_text_size():
    data = text.generate_text(total_bytes=100_000)
    assert abs(len(data) - 100_000) < 200


def test_text_deterministic():
    assert (text.generate_text(total_bytes=10_000)
            == text.generate_text(total_bytes=10_000))


def test_matching_line_bytes_counts_only_matches():
    data = text.generate_text(total_bytes=50_000, match_lines=4)
    match_bytes = text.matching_line_bytes(data)
    assert 0 < match_bytes < 1000  # 4 short lines


def test_paper_parameters():
    assert text.PAPER_FILE_BYTES == 1_146_880
    assert text.PAPER_MATCH_LINES == 16
    assert text.PAPER_PATTERN == "Big Red Bear"


# ----------------------------------------------------------------------
# Tar file sets
# ----------------------------------------------------------------------
def test_fileset_total_size():
    fileset = files.generate_fileset(total_bytes=1024 * 1024)
    assert files.total_size(fileset) == 1024 * 1024


def test_fileset_deterministic_content():
    spec = files.FileSpec(name="x.bin", size=1000)
    assert spec.content() == spec.content()
    assert len(spec.content()) == 1000


def test_fileset_names_unique():
    fileset = files.generate_fileset(total_bytes=2 * 1024 * 1024)
    names = [f.name for f in fileset]
    assert len(names) == len(set(names))


def test_fileset_validation():
    with pytest.raises(ValueError):
        files.generate_fileset(total_bytes=0)


# ----------------------------------------------------------------------
# Datamation records
# ----------------------------------------------------------------------
def test_datamation_key_size():
    keys = datamation.generate_keys(100)
    assert all(len(k) == 10 for k in keys)


def test_datamation_uniform_partitioning():
    keys = datamation.generate_keys(8000)
    counts = datamation.partition_counts(keys, 4)
    assert sum(counts) == 8000
    for count in counts:
        assert count == pytest.approx(2000, rel=0.1)


def test_datamation_assignment_consistent():
    keys = datamation.generate_keys(50)
    boundaries = datamation.range_boundaries(4)
    for key in keys:
        node = datamation.assign_node(key, boundaries)
        assert 0 <= node < 4


def test_datamation_validation():
    with pytest.raises(ValueError):
        datamation.generate_keys(0)
    with pytest.raises(ValueError):
        datamation.range_boundaries(0)


def test_record_layout_constants():
    assert datamation.RECORD_BYTES == 100
    assert datamation.KEY_BYTES == 10

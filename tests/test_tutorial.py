"""The tutorial's code must run exactly as documented (docs/tutorial.md)."""

from repro.net import ActiveHeader, ChannelAdapter, Link, Message
from repro.sim import Environment
from repro.switch import ActiveSwitch
from repro.switch.patterns import stream_loop


def test_tutorial_section_1_and_2_redactor_fabric():
    env = Environment()
    switch = ActiveSwitch(env, "sw0")
    adapters = {}
    for port, name in enumerate(["storage", "analyst"]):
        to_switch = Link(env, f"{name}->sw0")
        from_switch = Link(env, f"sw0->{name}")
        adapter = ChannelAdapter(env, name)
        adapter.attach(tx_link=to_switch, rx_link=from_switch)
        switch.connect(port, tx_link=from_switch, rx_link=to_switch)
        switch.routing.add(name, port)
        adapters[name] = adapter

    SECRET = b"password="

    def redactor(ctx):
        def process(ctx, offset, chunk):
            yield from ctx.compute(cycles=chunk * 3)

        yield from stream_loop(ctx, process)
        clean = b"\n".join(line for line in ctx.arg.split(b"\n")
                           if SECRET not in line)
        yield from ctx.send("analyst", len(clean), payload=clean)

    switch.register_handler(12, redactor)

    log = b"ok line\npassword=hunter2\nanother ok line\n" * 40

    def producer(env):
        yield from adapters["storage"].transmit(Message(
            "storage", "sw0", size_bytes=len(log),
            active=ActiveHeader(handler_id=12, address=0x0),
            payload=log))

    def consumer(env):
        return (yield adapters["analyst"].recv_queue.get())

    env.process(producer(env))
    done = env.process(consumer(env))
    message = env.run(until=done)
    assert b"password" not in message.payload
    assert b"ok line" in message.payload
    env.run()
    assert switch.buffers.in_use == 0


def test_tutorial_section_3_redactor_app():
    import repro
    from repro.apps.base import BlockWork, StreamApp

    class RedactorApp(StreamApp):
        name = "redactor"
        request_bytes = 64 * 1024

        def prepare(self):
            total = int(8 * 1024 * 1024 * self.scale)
            redacted_fraction = 0.1
            for offset in range(0, total, self.request_bytes):
                nbytes = min(self.request_bytes, total - offset)
                out = int(nbytes * (1 - redacted_fraction))
                self.blocks.append(BlockWork(
                    nbytes=nbytes,
                    host_cycles=nbytes * 3,
                    host_stall_fn=(
                        lambda h, a=0x2000_0000 + offset, n=nbytes:
                        h.load_range(a, n)),
                    handler_cycles=nbytes * 3,
                    out_bytes=out,
                    active_host_cycles=0,
                ))

    result = repro.run(lambda: RedactorApp(scale=0.125))
    # The tutorial's sanity checks.
    assert (result.case("normal+pref").exec_ps
            <= result.case("normal").exec_ps)
    assert result.normalized_traffic("active") > 0.85  # only 10% dropped
    assert result.utilization("active") < result.utilization("normal")

    # Section 6: the same run, traced — identical results plus traces.
    traced = repro.run(lambda: RedactorApp(scale=0.125), trace=True)
    assert traced.cases == result.cases
    assert set(traced.traces) == set(result.cases)
    timeline = traced.report().timeline("active+pref")
    assert "timeline" in timeline
    summary = traced.traces["active+pref"].summary()
    assert summary.get("disk.read", 0) > 0

"""Every warn-and-forward shim emits exactly one DeprecationWarning.

The deprecated surface — ``repro.sim.Tracer`` (superseded by
``repro.obs``), ``repro.cluster.four_cases`` and
``repro.apps.run_four_cases`` (superseded by ``repro.run``) — must stay
usable, must warn, and must warn exactly once per call, so callers see
the migration pointer without their logs drowning in repeats.
"""

import warnings

from repro.apps import GrepApp, run_four_cases
from repro.cluster import ClusterConfig, four_cases
from repro.sim import Tracer


def _deprecations(caught):
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


def test_tracer_warns_exactly_once():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        tracer = Tracer()
    warned = _deprecations(caught)
    assert len(warned) == 1
    assert "repro.obs" in str(warned[0].message)
    # Still functional after the warning.
    tracer.record(1, "kind", cpu=0)
    assert tracer.count("kind") == 1


def test_four_cases_warns_exactly_once():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        cases = four_cases(ClusterConfig())
    warned = _deprecations(caught)
    assert len(warned) == 1
    assert "four_cases" in str(warned[0].message)
    assert len(cases) == 4


def test_run_four_cases_warns_exactly_once():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = run_four_cases(lambda: GrepApp(scale=0.02))
    warned = [w for w in _deprecations(caught)
              if "run_four_cases" in str(w.message)]
    assert len(warned) == 1
    assert set(result.cases) == {"normal", "normal+pref",
                                 "active", "active+pref"}

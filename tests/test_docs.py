"""The documentation stays true: links resolve and examples run.

Two guarantees:

* every relative link in ``docs/*.md``, ``README.md``, and the other
  top-level markdown files points at a file that exists;
* every fenced ``python`` block in ``docs/tutorial.md`` and
  ``docs/observability.md`` actually runs, sequentially, in one shared
  namespace per document — so the docs cannot drift from the API they
  describe.  (``tests/test_tutorial.py`` additionally mirrors the
  tutorial with assertions on the results.)
"""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent

LINKED_DOCS = sorted(
    [REPO / "README.md", *(REPO / "docs").glob("*.md"),
     *(p for p in REPO.glob("*.md") if p.name != "README.md")])

EXECUTABLE_DOCS = [REPO / "docs" / "tutorial.md",
                   REPO / "docs" / "observability.md",
                   REPO / "docs" / "topologies.md",
                   REPO / "docs" / "traffic.md",
                   REPO / "docs" / "scaling.md"]

_LINK = re.compile(r"\[[^\]]+\]\(([^)#\s]+)(?:#[^)\s]*)?\)")
_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _relative_links(path):
    text = path.read_text()
    # Fenced code is not prose: skip links inside code blocks.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target


@pytest.mark.parametrize("doc", LINKED_DOCS, ids=lambda p: p.name)
def test_relative_links_resolve(doc):
    missing = [target for target in _relative_links(doc)
               if not (doc.parent / target).exists()]
    assert not missing, f"{doc.name}: dead links {missing}"


def python_blocks(path):
    return [block for block in _FENCE.findall(path.read_text())
            if not block.lstrip().startswith(">>>")]


@pytest.mark.parametrize("doc", EXECUTABLE_DOCS, ids=lambda p: p.name)
def test_python_blocks_execute(doc):
    blocks = python_blocks(doc)
    assert blocks, f"{doc.name} has no python examples"
    namespace = {"__name__": f"docs_{doc.stem}"}
    for index, block in enumerate(blocks):
        try:
            exec(compile(block, f"{doc.name}[block {index}]", "exec"),
                 namespace)
        except Exception as exc:  # pragma: no cover - diagnostic path
            pytest.fail(f"{doc.name} block {index} failed: {exc!r}\n"
                        f"---\n{block}")

"""Smoke tests: every example script runs end to end (small inputs)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv):
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart_runs(capsys):
    run_example("quickstart.py", [])
    out = capsys.readouterr().out
    assert "summary delivered" in out


def test_custom_handler_runs(capsys):
    run_example("custom_handler.py", [])
    out = capsys.readouterr().out
    assert "matches the oracle" in out


def test_video_filter_pipeline_runs(capsys):
    run_example("video_filter_pipeline.py", ["0.1"])
    out = capsys.readouterr().out
    assert "active vs normal speedup" in out


def test_database_offload_runs(capsys):
    run_example("database_offload.py", ["0.005"])
    out = capsys.readouterr().out
    assert "HashJoin" in out
    assert "host cache-stall share" in out


def test_cluster_reduction_runs(capsys):
    run_example("cluster_reduction.py", ["8"])
    out = capsys.readouterr().out
    assert "reduce-to-one" in out
    assert "distributed" in out


def test_device_bypass_copy_runs(capsys):
    run_example("device_bypass_copy.py", ["2"])
    out = capsys.readouterr().out
    assert "host traffic" in out
    assert "switch-directed copy" in out


def test_technology_trends_runs(capsys):
    run_example("technology_trends.py", ["0.1"])
    out = capsys.readouterr().out
    assert "fast_storage" in out
    assert "paper_2003" in out


def test_fault_injection_runs(capsys):
    run_example("fault_injection.py", ["11"])
    out = capsys.readouterr().out
    assert "result byte-correct" in out
    assert "reproduces the run: True" in out

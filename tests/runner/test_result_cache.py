"""On-disk result cache: lossless codec, atomicity, format checks."""

import json

from repro.cpu.accounting import Breakdown
from repro.metrics.results import CaseResult
from repro.runner.cache import (CACHE_FORMAT, ResultCache, decode_case,
                                encode_case)


def sample_case(label="active+pref") -> CaseResult:
    return CaseResult(
        label=label,
        exec_ps=123_456_789_012_345,
        host=Breakdown(label="HP", exec_ps=123_456_789_012_345,
                       busy_ps=11_111, stall_ps=222_222),
        switch_cpus=[
            Breakdown(label="SP0", exec_ps=123_456_789_012_345,
                      busy_ps=987_654_321, stall_ps=0),
            Breakdown(label="SP1", exec_ps=123_456_789_012_345,
                      busy_ps=3, stall_ps=7),
        ],
        host_bytes_in=1 << 40,
        host_bytes_out=17,
        extra={"matches": 16, "ratio": 0.30000000000000004},
    )


def test_codec_round_trips_exactly():
    case = sample_case()
    restored = decode_case(encode_case(case))
    assert restored == case
    # Float fields survive bit-identically (no rounding in the codec).
    assert repr(restored.extra["ratio"]) == repr(case.extra["ratio"])


def test_codec_survives_json():
    case = sample_case()
    wire = json.loads(json.dumps(encode_case(case)))
    assert decode_case(wire) == case


def test_put_get_and_counters(tmp_path):
    cache = ResultCache(tmp_path / "c")
    assert cache.get("missing") is None
    assert (cache.hits, cache.misses) == (0, 1)
    case = sample_case()
    cache.put("k1", case, meta={"app": "grep"})
    assert cache.get("k1") == case
    assert (cache.hits, cache.misses) == (1, 1)
    assert len(cache) == 1


def test_put_is_atomic_no_temp_litter(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("k1", sample_case())
    cache.put("k1", sample_case())  # overwrite is fine
    leftovers = [p.name for p in tmp_path.iterdir()
                 if p.name.startswith(".tmp-")]
    assert leftovers == []
    assert len(cache) == 1


def test_format_mismatch_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.put("k1", sample_case())
    entry = json.loads(path.read_text())
    assert entry["format"] == CACHE_FORMAT
    entry["format"] = CACHE_FORMAT + 1
    path.write_text(json.dumps(entry))
    assert cache.get("k1") is None


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.put("k1", sample_case())
    path.write_text("{truncated")
    assert cache.get("k1") is None
    assert cache.misses == 1

"""Fault-stream seeding must not depend on which process computes it.

``FaultInjector`` derives each component's RNG from
``stream_seed(seed, component)`` — a SHA-256 construction over the
seed and component name, never over ``hash()`` (which is salted per
process for strings) or any process identity.  A worker in the pool
must therefore plan the exact fault schedule the parent would.
"""

import json
import os
import subprocess
import sys

from repro.faults import stream_seed

PROBE = r"""
import json, sys
from repro.faults import stream_seed
import random
out = {}
for component in ("link:0", "disk:3", "handler", "weird/component name"):
    seed = stream_seed(42, component)
    rng = random.Random(seed)
    out[component] = {"seed": seed,
                      "draws": [rng.random() for _ in range(4)]}
json.dump(out, sys.stdout)
"""


def reference():
    import random
    out = {}
    for component in ("link:0", "disk:3", "handler", "weird/component name"):
        seed = stream_seed(42, component)
        rng = random.Random(seed)
        out[component] = {"seed": seed,
                          "draws": [rng.random() for _ in range(4)]}
    return out


def test_stream_seed_matches_across_processes():
    """A fresh interpreter (new hash salt) derives identical streams."""
    env = dict(os.environ)
    # Force a different string-hash salt to prove nothing leaks through
    # hash(); sha256-derived seeds are immune.
    env["PYTHONHASHSEED"] = "12345"
    probe = subprocess.run(
        [sys.executable, "-c", PROBE], env=env,
        capture_output=True, text=True, check=True)
    assert json.loads(probe.stdout) == json.loads(json.dumps(reference()))


def test_stream_seed_separates_components_and_seeds():
    assert stream_seed(1, "link:0") != stream_seed(1, "link:1")
    assert stream_seed(1, "link:0") != stream_seed(2, "link:0")
    # Documented construction: sha256 of "{seed}/{component}".
    import hashlib
    expected = int.from_bytes(
        hashlib.sha256(b"7/disk:0").digest(), "big")
    assert stream_seed(7, "disk:0") == expected

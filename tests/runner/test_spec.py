"""AppSpec normalization, registry resolution, and the paper grid."""

import pytest

from repro.apps.grep import GrepApp
from repro.cluster.presets import get_preset
from repro.runner.spec import (APP_REGISTRY, AppSpec, make_spec, paper_grid,
                               register_app, resolve_app)


def test_make_spec_sorts_params():
    a = make_spec("grep", scale=0.5, preset=None)
    b = make_spec("grep", scale=0.5)
    assert a == b
    assert make_spec("md5", scale=1.0, num_switch_cpus=2).params == (
        ("num_switch_cpus", 2), ("scale", 1.0))


def test_label_hides_scale_shows_other_params():
    assert make_spec("grep", scale=0.5).label == "grep"
    assert (make_spec("md5", scale=1.0, num_switch_cpus=4).label
            == "md5[num_switch_cpus=4]")


def test_spec_passthrough_forbids_extra_params():
    spec = make_spec("grep", scale=0.5)
    assert make_spec(spec) is spec
    with pytest.raises(ValueError):
        make_spec(spec, scale=1.0)


def test_class_registration_roundtrip():
    spec = make_spec(GrepApp, scale=0.05)
    assert resolve_app(spec.app) is GrepApp
    assert isinstance(spec.build(), GrepApp)


def test_register_app_validates_path():
    with pytest.raises(ValueError):
        register_app("bad", "no_colon_here")


def test_resolve_unknown_app_raises():
    with pytest.raises(KeyError):
        resolve_app("not-an-app")


def test_paper_grid_shape():
    grid = paper_grid()
    assert len(grid) == 9
    labels = [spec.label for spec in grid]
    assert labels.count("md5") == 1
    assert "md5[num_switch_cpus=2]" in labels
    assert "md5[num_switch_cpus=4]" in labels
    assert all(name in APP_REGISTRY for name in
               {spec.app for spec in grid})


def test_base_config_preset_merge_keeps_app_topology():
    spec = make_spec("md5", scale=0.1, num_switch_cpus=4,
                     preset="fast_storage")
    config = spec.base_config()
    # App-owned topology survives the preset...
    assert config.num_switch_cpus == 4
    # ...while the preset's technology point applies.
    preset = get_preset("fast_storage")
    assert config.disk == preset.disk


def test_overrides_apply_last():
    plain = make_spec("grep", scale=0.1).base_config()
    spec = make_spec("grep", scale=0.1,
                     overrides={"seed": plain.seed + 7})
    assert spec.base_config().seed == plain.seed + 7

"""The shared warm worker pool: reuse, recycling, and bit-identity.

The pool exists to amortise worker start-up across the harness, the
offered-load sweeps, and the adaptive knee search — so the tests here
pin down (a) when :func:`shared_pool` may hand back the same pool and
when it must retire it, and (b) that results through a warm, reused
pool stay field-identical to serial execution.
"""

import os

import pytest

from repro.runner.harness import ExperimentRunner
from repro.runner.pool import (WorkerPool, _sim_signature, shared_pool,
                               shutdown_shared_pool)
from repro.runner.spec import make_spec
from repro.traffic import ServiceSpec, sweep_offered_load

SPEC = make_spec("select", scale=1 / 128)

SERVICE = ServiceSpec(app="grep", case="active", rate_rps=4000.0,
                      duration_s=0.005, num_streams=4, num_keys=16,
                      depth=16, workers=4, seed=5)


@pytest.fixture(autouse=True)
def retire_shared_pool():
    shutdown_shared_pool()
    yield
    shutdown_shared_pool()


# ----------------------------------------------------------------------
# shared_pool lifecycle (no workers actually spawned: creation is lazy)
# ----------------------------------------------------------------------
def test_shared_pool_is_reused_and_grows():
    pool = shared_pool(2)
    assert shared_pool(2) is pool
    assert shared_pool(1) is pool          # narrower request: reuse
    wider = shared_pool(4)                 # wider request: replacement
    assert wider is not pool
    assert pool.closed
    assert wider.workers == 4
    assert shared_pool(2).workers == 4     # sized to the larger request


def test_shared_pool_recycles_on_sim_env_change(monkeypatch):
    pool = shared_pool(2)
    assert pool.sim_signature == _sim_signature()
    # Flip to whatever the ambient environment is *not* (the CI matrix
    # already runs this file with REPRO_SIM_PERBLOCK=1).
    flipped = "0" if os.environ.get("REPRO_SIM_PERBLOCK") == "1" else "1"
    monkeypatch.setenv("REPRO_SIM_PERBLOCK", flipped)
    recycled = shared_pool(2)
    assert recycled is not pool
    assert pool.closed                     # stale workers must retire
    monkeypatch.delenv("REPRO_SIM_PERBLOCK")
    assert shared_pool(2) is not recycled


def test_shared_pool_recycles_on_start_method_change():
    if os.name != "posix":  # pragma: no cover - fork is POSIX-only
        pytest.skip("fork start method requires POSIX")
    pool = shared_pool(2, "spawn")
    other = shared_pool(2, "fork")
    assert other is not pool and pool.closed


def test_worker_pool_validation_and_close():
    with pytest.raises(ValueError):
        WorkerPool(0)
    pool = WorkerPool(1)
    assert "cold" in repr(pool)
    pool.close()
    assert pool.closed
    with pytest.raises(RuntimeError):
        pool.map(str, [1])


# ----------------------------------------------------------------------
# Bit-identity through real (spawned) warm workers
# ----------------------------------------------------------------------
def test_runner_and_sweep_share_one_warm_pool():
    from repro.runner.cache import encode_case

    serial = ExperimentRunner(parallel=1).run_grid([SPEC])
    fanned = ExperimentRunner(parallel=2).run_grid([SPEC])
    key = (SPEC.label, None)
    assert {label: encode_case(case)
            for label, case in fanned[key].cases.items()} == \
        {label: encode_case(case)
         for label, case in serial[key].cases.items()}

    # The grid run above created the shared pool; the sweep must draw
    # from the same warm workers, and its results must match serial.
    pool = shared_pool(2)
    assert pool._pool is not None          # already spawned, still warm
    rates = (2000.0, 4000.0)
    parallel = sweep_offered_load(SERVICE, rates, parallel=2)
    assert shared_pool(2) is pool          # untouched by the sweep
    serial_sweep = sweep_offered_load(SERVICE, rates)
    assert [r.to_dict() for r in parallel.results] == \
        [r.to_dict() for r in serial_sweep.results]


def test_explicit_pool_injection():
    pool = WorkerPool(2)
    try:
        runner = ExperimentRunner(parallel=2, pool=pool)
        assert runner._pool is pool
        sweep = sweep_offered_load(SERVICE, (2000.0, 4000.0), pool=pool)
        assert pool._pool is not None      # the injected pool did the work
        serial = sweep_offered_load(SERVICE, (2000.0, 4000.0))
        assert [r.to_dict() for r in sweep.results] == \
            [r.to_dict() for r in serial.results]
    finally:
        pool.close()

"""Canonical fingerprinting: stability, sensitivity, strictness."""

from dataclasses import dataclass

import pytest

from repro.cluster import ClusterConfig
from repro.runner.fingerprint import (FingerprintError, canonicalize,
                                      code_version, fingerprint)


@dataclass(frozen=True)
class PointA:
    x: int = 1
    y: float = 2.0


@dataclass(frozen=True)
class PointB:
    x: int = 1
    y: float = 2.0


def test_scalars_pass_through():
    assert canonicalize(None) is None
    assert canonicalize(True) is True
    assert canonicalize(42) == 42
    assert canonicalize("s") == "s"


def test_floats_distinct_from_ints():
    assert fingerprint(1) != fingerprint(1.0)


def test_float_canonical_form_is_repr():
    assert canonicalize(0.1) == ["f", repr(0.1)]
    # repr round-trips exactly, so equal floats always agree.
    assert fingerprint(1e300) == fingerprint(float("1e300"))


def test_dict_key_order_is_irrelevant():
    assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})


def test_sequences_unify():
    assert fingerprint([1, 2, 3]) == fingerprint((1, 2, 3))


def test_dataclass_type_name_prevents_collisions():
    assert fingerprint(PointA()) != fingerprint(PointB())
    assert fingerprint(PointA()) == fingerprint(PointA(x=1, y=2.0))
    assert fingerprint(PointA()) != fingerprint(PointA(x=2))


def test_cluster_config_fingerprints_recursively():
    base = ClusterConfig()
    assert fingerprint(base) == fingerprint(ClusterConfig())
    assert fingerprint(base) != fingerprint(
        base.with_case(active=True, prefetch=False))
    seeded = ClusterConfig(seed=base.seed + 1)
    assert fingerprint(base) != fingerprint(seeded)


def test_uncacheable_values_raise():
    with pytest.raises(FingerprintError):
        canonicalize(lambda: None)
    with pytest.raises(FingerprintError):
        fingerprint(object())


def test_code_version_is_stable_and_short():
    first = code_version()
    assert first == code_version()
    assert len(first) == 20
    int(first, 16)  # hex digest prefix

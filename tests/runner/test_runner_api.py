"""The repro.run() front door: paths, defaults, and reports."""

import pytest

import repro
from repro.apps.grep import GrepApp
from repro.runner.api import RunResult, configure, run, run_many
from repro.runner.cache import encode_case


@pytest.fixture(autouse=True)
def restore_defaults():
    saved = configure()
    yield
    configure(**saved)


def test_registry_path_returns_run_result():
    result = run("grep", scale=0.05)
    assert isinstance(result, RunResult)
    assert result.name == "grep"
    assert set(result.cases) == {"normal", "normal+pref", "active",
                                 "active+pref"}
    assert result.stats["parallel"] == 1
    assert result.stats["cache_dir"] is None


def test_factory_path_matches_registry_path():
    by_name = run("grep", scale=0.05)
    by_factory = run(lambda: GrepApp(scale=0.05))
    assert by_factory.name == "grep"
    for label, case in by_name.cases.items():
        assert encode_case(by_factory.case(label)) == encode_case(case)


def test_factory_path_rejects_spec_parameters():
    with pytest.raises(TypeError):
        run(lambda: GrepApp(scale=0.05), scale=0.05)


def test_case_subset():
    result = run("grep", cases=("normal", "active"), scale=0.05)
    assert tuple(result.cases) == ("normal", "active")


def test_cache_round_trip_through_run(tmp_path):
    cold = run("grep", scale=0.05, cache=tmp_path / "c")
    warm = run("grep", scale=0.05, cache=tmp_path / "c")
    assert warm.stats["cache_hits"] == 4
    for label in cold.cases:
        assert encode_case(warm.case(label)) == encode_case(cold.case(label))


def test_configure_sets_process_defaults(tmp_path):
    configure(cache=str(tmp_path / "d"))
    result = run("grep", scale=0.05)
    assert result.stats["cache_dir"] == str(tmp_path / "d")


def test_configure_rejects_unknown_keys():
    with pytest.raises(TypeError):
        configure(workers=4)


def test_run_many_shared_pool():
    results = run_many(["grep"], cases=("normal",))
    # Registered names pass through make_spec with default parameters
    # (scale=1.0), so keep this to one cheap case.
    assert set(results) == {"grep"}
    assert isinstance(results["grep"], RunResult)


def test_report_accessor():
    result = run("grep", scale=0.05)
    report = result.report()
    assert "grep" in report.performance()
    assert "n-HP" in report.breakdown()
    assert str(report) == report.render()


def test_top_level_exports():
    assert repro.run is run
    assert repro.configure is configure
    for case_name in ("Tracer", "ResultCache", "paper_grid", "RunResult"):
        assert hasattr(repro, case_name)


def test_profile_run_dumps_pstats(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    plain = run("grep", scale=0.05, cases=["normal", "active"])
    result = run("grep", scale=0.05, cases=["normal", "active"],
                 profile=True)
    # Profiling never perturbs the measurement.
    assert result.cases == plain.cases
    profiles = result.stats["profiles"]
    assert set(profiles) == {"normal", "active"}
    for label, path in profiles.items():
        assert (tmp_path / "cache" / "profiles").samefile(
            __import__("pathlib").Path(path).parent)
        assert path.endswith(f"grep-{label}.pstats")
    rendered = result.report().profile(top=5)
    assert "grep [normal]: profile" in rendered
    assert "run_case" in rendered
    # Single-case rendering and the unprofiled empty string.
    assert "active" in result.report().profile(case="active")
    assert plain.report().profile() == ""


def test_profile_and_trace_are_exclusive():
    with pytest.raises(ValueError):
        run("grep", scale=0.05, profile=True, trace=True)

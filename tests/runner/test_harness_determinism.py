"""The PR's core guarantee: serial == parallel == cache-restored.

Every :class:`CaseResult` field must match bit-for-bit across the three
execution paths; the cache must be able to satisfy a whole rerun.
"""

import pytest

from repro.runner.cache import encode_case
from repro.runner.harness import (CASE_LABELS, Cell, ExperimentRunner,
                                  cell_key, run_cell)
from repro.runner.spec import make_spec

SPECS = [make_spec("grep", scale=0.05), make_spec("select", scale=1 / 128)]


def snapshot(grid):
    return {key: {label: encode_case(case)
                  for label, case in result.cases.items()}
            for key, result in grid.items()}


@pytest.fixture(scope="module")
def serial_grid():
    return ExperimentRunner(parallel=1).run_grid(SPECS)


def test_parallel_matches_serial_field_by_field(serial_grid):
    fanned = ExperimentRunner(parallel=4).run_grid(SPECS)
    assert snapshot(fanned) == snapshot(serial_grid)


def test_cache_restores_bit_identical_results(tmp_path, serial_grid):
    cache_dir = tmp_path / "cache"
    runner = ExperimentRunner(parallel=1, cache=cache_dir)
    first = runner.run_grid(SPECS)
    assert snapshot(first) == snapshot(serial_grid)
    assert runner.cache.misses == len(SPECS) * len(CASE_LABELS)

    warm = ExperimentRunner(parallel=1, cache=cache_dir)
    second = warm.run_grid(SPECS)
    assert snapshot(second) == snapshot(serial_grid)
    assert warm.cache.hits == len(SPECS) * len(CASE_LABELS)
    assert warm.cache.misses == 0


def test_parallel_pool_populates_the_same_cache(tmp_path, serial_grid):
    cache_dir = tmp_path / "cache"
    ExperimentRunner(parallel=4, cache=cache_dir).run_grid(SPECS)
    warm = ExperimentRunner(parallel=1, cache=cache_dir)
    assert snapshot(warm.run_grid(SPECS)) == snapshot(serial_grid)
    assert warm.cache.misses == 0


def test_cell_runs_are_order_independent(serial_grid):
    cell = Cell(spec=SPECS[1], case="active+pref")
    alone = run_cell(cell)
    from_grid = serial_grid[(SPECS[1].label, None)].case("active+pref")
    assert encode_case(alone) == encode_case(from_grid)


def test_seed_override_changes_key_and_schedule():
    spec = SPECS[0]
    base = Cell(spec=spec, case="normal")
    seeded = Cell(spec=spec, case="normal", seed=1234)
    assert cell_key(base) != cell_key(seeded)


def test_unknown_case_rejected():
    with pytest.raises(ValueError):
        Cell(spec=SPECS[0], case="turbo")


def test_parallel_must_be_positive():
    with pytest.raises(ValueError):
        ExperimentRunner(parallel=0)

"""Paper-scale runs (slow; excluded by default).

Run with::

    pytest -m slow tests/test_paper_scale.py

These execute the database and sort experiments at the paper's full
Table-1 sizes (128 MB Select, 16 MB x 128 MB HashJoin, 16M-record sort)
to confirm the scaled defaults used everywhere else do not distort the
normalized metrics.
"""

import pytest

from repro.apps import HashJoinApp, SelectApp, SortApp, run_four_cases

pytestmark = pytest.mark.slow


def test_select_full_scale_matches_scaled_shape():
    full = run_four_cases(lambda: SelectApp(scale=1.0))
    assert full.normalized_traffic("active") == pytest.approx(0.25, abs=0.02)
    normal_avg = (full.utilization("normal")
                  + full.utilization("normal+pref")) / 2
    active_avg = (full.utilization("active")
                  + full.utilization("active+pref")) / 2
    assert 15 < normal_avg / active_avg < 30
    times = [full.case(label).exec_ps
             for label in ("normal+pref", "active", "active+pref")]
    assert max(times) / min(times) < 1.10


def test_hashjoin_full_scale_pref_cases_tie():
    full = run_four_cases(lambda: HashJoinApp(scale=1.0))
    assert full.active_pref_speedup == pytest.approx(1.0, abs=0.05)
    npref = full.case("normal+pref").host.stall_frac
    apref = full.case("active+pref").host.stall_frac
    assert apref < npref


def test_sort_quarter_scale_traffic_formula():
    # 1/4 of 16M records (full scale would take ~10 min of wall clock).
    result = run_four_cases(lambda: SortApp(scale=0.25))
    assert result.normalized_traffic("active") == pytest.approx(0.40,
                                                                abs=0.01)

"""TraceEvent/TraceCollector semantics: typing, queries, capacity."""

import pytest

from repro.obs import (
    PHASE_COUNTER,
    PHASE_INSTANT,
    PHASE_SPAN,
    TraceCollector,
    TraceEvent,
)


def test_event_fields_and_category():
    event = TraceEvent(PHASE_SPAN, "sw0-cpu0", "link.xmit", ts_ps=100,
                       dur_ps=50, args=(("bytes", 512),))
    assert event.end_ps == 150
    assert event.category == "link"
    assert event.get("bytes") == 512
    assert event.get("missing", 7) == 7


def test_event_validation():
    with pytest.raises(ValueError):
        TraceEvent("Z", "c", "n", ts_ps=0)
    with pytest.raises(ValueError):
        TraceEvent(PHASE_INSTANT, "c", "n", ts_ps=-1)
    with pytest.raises(ValueError):
        TraceEvent(PHASE_SPAN, "c", "n", ts_ps=0, dur_ps=-1)


def test_events_are_frozen_and_comparable():
    a = TraceCollector()
    b = TraceCollector()
    for c in (a, b):
        c.span("disk0", "disk.read", 10, 20, bytes=512)
        c.instant("disk0", "disk.done", 30)
    assert list(a) == list(b)
    with pytest.raises(AttributeError):
        a.events[0].ts_ps = 99


def test_collector_emit_kinds_and_args_sorted():
    c = TraceCollector()
    c.span("link0", "link.xmit", 0, 10, seq=1, bytes=64)
    c.instant("link0", "link.deliver", 10, seq=1)
    c.counter("sim", "event-heap", 5, 3)
    phases = [e.phase for e in c]
    assert phases == [PHASE_SPAN, PHASE_INSTANT, PHASE_COUNTER]
    # kwargs are canonicalized to sorted pairs
    assert c.events[0].args == (("bytes", 64), ("seq", 1))
    assert c.events[2].get("value") == 3


def test_select_and_window():
    c = TraceCollector()
    c.span("a", "x.one", 0, 10)
    c.span("b", "x.one", 5, 20)
    c.instant("a", "x.two", 40)
    assert len(c.select(name="x.one")) == 2
    assert len(c.select(component="a")) == 2
    assert len(c.select(name="x.one", component="b")) == 1
    assert c.select(phase=PHASE_INSTANT)[0].name == "x.two"
    assert c.span_ps() == (0, 40)
    assert c.components() == ["a", "b"]
    assert sorted(c.names()) == ["x.one", "x.two"]


def test_capacity_drops_newest_and_counts():
    c = TraceCollector(capacity=2)
    for i in range(5):
        c.instant("a", "tick", i)
    assert len(c) == 2
    # the survivors are the oldest events, drops count the rest
    assert [e.ts_ps for e in c] == [0, 1]
    assert c.dropped == 3
    assert c.summary()["dropped"] == 3


def test_clear_resets_everything():
    c = TraceCollector(capacity=1)
    c.instant("a", "tick", 0)
    c.instant("a", "tick", 1)
    c.clear()
    assert len(c) == 0 and c.dropped == 0
    c.instant("a", "tick", 2)
    assert len(c) == 1

"""Tracing must observe, never perturb: traced == untraced results."""

import repro
from repro.obs import TraceCollector


def test_traced_run_results_are_identical():
    plain = repro.run("grep", scale=0.05)
    traced = repro.run("grep", scale=0.05, trace=True)
    assert traced.cases == plain.cases
    assert set(traced.traces) == set(plain.cases)
    for collector in traced.traces.values():
        assert len(collector) > 0
        assert collector.dropped == 0


def test_fault_free_extra_stays_empty_under_tracing():
    # An unbounded collector never drops, so reliability_report() (and
    # therefore CaseResult.extra) must stay {} on fault-free runs.
    traced = repro.run("grep", scale=0.05, trace=True)
    for label, case in traced.cases.items():
        assert case.extra == {}, label


def test_trace_write_path_matches_trace_true(tmp_path):
    path = tmp_path / "trace.json"
    traced = repro.run("grep", scale=0.05, trace=path)
    plain = repro.run("grep", scale=0.05, trace=True)
    assert path.exists()
    assert traced.cases == plain.cases
    for label in plain.traces:
        assert list(traced.traces[label]) == list(plain.traces[label])


def test_dropped_events_surface_in_reliability_report():
    from repro.cluster import ClusterConfig, System, case_configs

    config = dict(case_configs(ClusterConfig()))["normal"]
    system = System(config)
    system.attach_trace(TraceCollector(capacity=1))
    system.env.trace.instant("a", "tick", 0)
    system.env.trace.instant("a", "tick", 1)  # dropped
    report = system.reliability_report()
    assert report["trace_events_dropped"] == 1.0

    untraced = System(config)
    assert untraced.reliability_report() == {}

"""Exporters: Chrome trace_event round-trip, validation, CSV."""

import csv
import io
import json

import pytest

from repro.obs import (
    TraceCollector,
    load_chrome_trace,
    to_chrome_trace,
    trace_csv,
    validate_chrome_trace,
    write_chrome_trace,
)


def sample_collector():
    c = TraceCollector()
    c.span("link0", "link.xmit", 1_000_000, 512_000, msg=1, seq=0,
           bytes=528, outcome="ok", attempt=0)
    c.instant("link0", "link.deliver", 1_532_000, msg=1, seq=0, bytes=528)
    c.span("sw0-cpu0", "handler", 1_600_000, 400_000, handler_id=12,
           busy_ps=300_000, stall_ps=50_000)
    c.counter("sim", "event-heap", 2_000_000, 17)
    return c


def test_document_shape_and_metadata():
    doc = to_chrome_trace({"active": sample_collector()})
    assert validate_chrome_trace(doc) == []
    events = doc["traceEvents"]
    phases = {e["ph"] for e in events}
    assert phases == {"M", "X", "i", "C"}
    # one process per case, one thread per component
    names = [e for e in events if e["ph"] == "M"]
    assert {"process_name", "thread_name", "thread_sort_index"} <= {
        e["name"] for e in names}
    span = next(e for e in events if e["ph"] == "X")
    # float microseconds out front, exact picoseconds in args
    assert span["ts"] == pytest.approx(1.0)
    assert span["dur"] == pytest.approx(0.512)
    assert span["args"]["ts_ps"] == 1_000_000
    assert span["args"]["dur_ps"] == 512_000
    assert doc["otherData"]["schema_version"] == 1


def test_round_trip_is_lossless(tmp_path):
    traces = {"normal": sample_collector(), "active": sample_collector()}
    path = tmp_path / "trace.json"
    write_chrome_trace(path, traces)
    loaded = load_chrome_trace(path)
    assert set(loaded) == {"normal", "active"}
    for label in traces:
        assert list(loaded[label]) == list(traces[label])


def test_single_collector_round_trip_preserves_drops(tmp_path):
    c = TraceCollector(capacity=2)
    for i in range(4):
        c.instant("a", "tick", i)
    path = tmp_path / "trace.json"
    write_chrome_trace(path, c)
    loaded = load_chrome_trace(path)
    (collector,) = loaded.values()
    assert list(collector) == list(c)
    assert collector.dropped == 2


def test_validate_rejects_malformed_documents(tmp_path):
    assert validate_chrome_trace({}) != []
    assert validate_chrome_trace({"traceEvents": 3}) != []
    bad_event = {"traceEvents": [{"ph": "X", "name": "n", "pid": "p",
                                  "tid": "t", "ts": "not a number"}]}
    assert any("ts" in problem for problem in
               validate_chrome_trace(bad_event))
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(bad_event))
    with pytest.raises(ValueError):
        load_chrome_trace(path)


def test_csv_has_one_row_per_event_with_json_args():
    traces = {"active": sample_collector()}
    rows = list(csv.DictReader(io.StringIO(trace_csv(traces))))
    assert len(rows) == len(traces["active"].events)
    first = rows[0]
    assert first["case"] == "active"
    assert first["component"] == "link0"
    assert json.loads(first["args"])["outcome"] == "ok"
    assert int(first["ts_ps"]) == 1_000_000

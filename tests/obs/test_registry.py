"""MetricsRegistry: probes, counters, stats discovery, snapshot/diff."""

from dataclasses import dataclass, field

import pytest

from repro.cluster import ClusterConfig, System
from repro.obs import MetricsRegistry


def test_register_and_value():
    reg = MetricsRegistry()
    reg.register("a.x", lambda: 3)
    assert reg.value("a.x") == 3
    assert "a.x" in reg
    assert len(reg) == 1
    with pytest.raises(TypeError):
        reg.register("a.y", 7)


def test_counter_is_live():
    reg = MetricsRegistry()
    c = reg.counter("errors")
    assert reg.value("errors") == 0
    c.add(2)
    c.add(3)
    assert reg.value("errors") == 5


def test_register_stats_discovers_numeric_fields():
    @dataclass
    class Stats:
        packets: int = 4
        bytes: int = 1024
        label: str = "nope"          # non-numeric: skipped
        enabled: bool = True         # bool: skipped
        _private: int = field(default=9)

    reg = MetricsRegistry()
    reg.register_stats("link.up", Stats())
    assert sorted(reg.names()) == ["link.up.bytes", "link.up.packets"]
    assert reg.value("link.up.bytes") == 1024

    explicit = MetricsRegistry()
    explicit.register_stats("link.up", Stats(), fields=["packets"])
    assert explicit.names() == ["link.up.packets"]


def test_snapshot_prefix_and_diff():
    reg = MetricsRegistry()
    reg.register("disk.a.requests", lambda: 1)
    reg.register("disk.b.requests", lambda: 2)
    reg.register("diskette", lambda: 9)   # prefix match is dotted, not str
    c = reg.counter("cpu.busy")

    snap = reg.snapshot(prefix="disk")
    assert set(snap) == {"disk.a.requests", "disk.b.requests"}

    before = reg.snapshot()
    c.add(10)
    delta = reg.diff(before)
    assert delta == {"cpu.busy": 10}
    # unregister between snapshots: missing keys are treated as 0
    reg.unregister("diskette")
    after = reg.snapshot()
    assert reg.diff(before, after)["diskette"] == -9


def test_system_registry_covers_every_layer():
    from repro.cluster import case_configs

    active_config = dict(case_configs(ClusterConfig()))["active"]
    system = System(active_config)
    names = system.metrics.names()
    for prefix in ("sim.", "link.", "cpu.", "hca.", "disk.", "switch."):
        assert any(n.startswith(prefix) for n in names), prefix
    snap = system.metrics.snapshot()
    assert snap["sim.event_count"] == 0
    assert all(isinstance(v, (int, float)) for v in snap.values())
    # utilization probes exist per link and per disk
    assert any(n.endswith(".utilization") for n in names)

"""Chaos: fail-stop switch deaths mid-reduction on real fat-trees.

Random spines die while a placed reduction is in flight (64-256 hosts);
detection, ECMP failover, and epoch-numbered placement repair must keep
every collective bit-identical to the host-side oracle.  Schedules are
drawn from the injector's dedicated fail-stop stream, so identical
seeds reproduce identical kills.
"""

import pytest

from repro.apps.reduction import REDUCTION_HCA, _make_vectors, _oracle
from repro.cluster.fabric import TopologySpec, build_fabric
from repro.cluster.placement import plan_placement, run_placed_reduction
from repro.faults import FailStopFaults, FaultInjector, FaultPlan, LinkFaults
from repro.sim import Environment
from repro.sim.units import us

pytestmark = pytest.mark.chaos

#: Kills land inside the collective's vulnerable window (clean runs
#: finish around 40-48 us on these shapes with REDUCTION_HCA).
KILL_WINDOW_PS = (us(5), us(45))


def _chaos_fabric(hosts, seed, kills=1, link_faults=None):
    env = Environment()
    plan = FaultPlan(
        link=link_faults if link_faults is not None else LinkFaults(),
        failstop=FailStopFaults(random_switch_kills=kills,
                                kill_window_ps=KILL_WINDOW_PS,
                                collective_timeout_ps=us(200)))
    injector = FaultInjector(plan, seed=seed)
    if hosts > 128:
        spec = TopologySpec(kind="fat_tree", num_hosts=hosts,
                            hosts_per_leaf=16, switch_ports=32)
    else:
        spec = TopologySpec(kind="fat_tree", num_hosts=hosts)
    fabric = build_fabric(env, spec, hca_config=REDUCTION_HCA,
                          injector=injector)
    return fabric, injector


def _reduce(fabric):
    vectors = _make_vectors(len(fabric.hosts))
    done = run_placed_reduction(fabric, plan_placement(fabric, "per_level"),
                                vectors)
    assert done["result"] == _oracle(vectors)
    return done


@pytest.mark.parametrize("hosts", [64, 128, 256])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_random_spine_kill_mid_reduction_is_exact(hosts, seed):
    fabric, injector = _chaos_fabric(hosts, seed=seed)
    done = _reduce(fabric)
    assert fabric.ft.switch_kills == 1      # the kill actually landed
    snapshot = injector.snapshot()
    assert snapshot["injected_failstop_switch_down"] == 1.0
    # Recovery bookkeeping is consistent however the kill landed: a
    # repair implies a retry, and a retry implies the timeout fired.
    assert done["attempts"] >= 1 + done["repairs"]
    if done["repairs"]:
        assert fabric.ft.repairs == done["repairs"]
        assert fabric.ft.detections > 0


def test_double_spine_kill_still_recovers():
    """Two of the four spines die; the survivors must carry the tree."""
    fabric, _ = _chaos_fabric(128, seed=5, kills=2)
    done = _reduce(fabric)
    assert fabric.ft.switch_kills == 2
    assert done["attempts"] <= 4


def test_failstop_on_top_of_lossy_links_is_exact():
    """Fail-stop and transient faults together: CRC/NACK recovery hides
    the drops while failover/repair hides the dead spine."""
    fabric, _ = _chaos_fabric(
        64, seed=9, link_faults=LinkFaults(drop_rate=0.05))
    done = _reduce(fabric)
    assert fabric.ft.switch_kills == 1
    assert done["attempts"] >= 1


def test_kill_schedule_reproduces_with_seed():
    outcomes = []
    for _ in range(2):
        fabric, injector = _chaos_fabric(64, seed=13)
        done = _reduce(fabric)
        outcomes.append((done["latency_ps"], done["attempts"],
                         done["repairs"], injector.fingerprint()))
    assert outcomes[0] == outcomes[1]


def test_different_seeds_draw_different_kills():
    fingerprints = set()
    for seed in (1, 2, 3, 4):
        fabric, injector = _chaos_fabric(64, seed=seed)
        _reduce(fabric)
        fingerprints.add(injector.fingerprint())
    assert len(fingerprints) > 1


def test_failstop_preset_through_run_front_door():
    """repro.run arms the fail-stop driver from the preset's plan."""
    import repro

    result = repro.run("reduce", topology="fat_tree", hosts=64,
                       placement="per_level", preset="failstop_2003",
                       overrides={"seed": 1}, cases=("active",))
    case = result.cases["active"]
    assert case.extra["failstop_switch_kills"] == 1.0
    assert "fabric.failovers" in case.extra
    # seed=1 lands the kill mid-collective: full detect->repair->retry.
    assert case.extra["collective_attempts"] == 2.0
    assert case.extra["collective_repairs"] == 1.0

"""Chaos: collective reductions over a lossy fabric.

Every link in the switch tree drops and corrupts packets; the CRC +
NACK/retransmission protocol must hide all of it — the numerically
checked reduction result has to match the fault-free oracle bit for
bit, on both the active (switch-handler) and normal (host MST) paths.
"""

import pytest

from repro.apps.reduction import (
    REDUCE_TO_ONE,
    REDUCTION_HCA,
    _make_vectors,
    _oracle,
    run_active_reduction,
    run_normal_reduction,
)
from repro.cluster.topology import SwitchTree
from repro.faults import FaultInjector, FaultPlan, LinkFaults
from repro.sim import Environment

pytestmark = pytest.mark.chaos

LOSSY = FaultPlan(link=LinkFaults(drop_rate=0.1, bit_error_rate=0.05))


def _lossy_tree(num_hosts, seed, plan=LOSSY):
    env = Environment()
    injector = FaultInjector(plan, seed=seed)
    tree = SwitchTree(env, num_hosts=num_hosts, hosts_per_leaf=8,
                      switch_ports=16, hca_config=REDUCTION_HCA,
                      injector=injector)
    return tree, injector


def _host_retransmits(tree):
    return sum(host.hca.reliability().get("tx_retransmits", 0) +
               host.hca.reliability().get("rx_retransmits", 0)
               for host in tree.hosts)


def test_active_reduction_is_byte_correct_under_link_faults():
    vectors = _make_vectors(16)
    tree, injector = _lossy_tree(16, seed=11)
    result = run_active_reduction(tree, vectors, REDUCE_TO_ONE)
    assert result.result_vector == _oracle(vectors)
    # The fabric really was lossy — recovery did actual work.
    assert injector.total_injected > 0
    snapshot = injector.snapshot()
    assert (snapshot.get("injected_link_drops", 0) +
            snapshot.get("injected_link_corruptions", 0)) > 0


def test_normal_reduction_is_byte_correct_under_link_faults():
    vectors = _make_vectors(8)
    tree, injector = _lossy_tree(8, seed=5)
    result = run_normal_reduction(tree, vectors, REDUCE_TO_ONE)
    assert result.result_vector == _oracle(vectors)
    assert injector.total_injected > 0
    assert _host_retransmits(tree) > 0


def test_faults_cost_latency_but_never_bytes():
    vectors = _make_vectors(16)
    clean_env = Environment()
    clean_tree = SwitchTree(clean_env, num_hosts=16, hosts_per_leaf=8,
                            switch_ports=16, hca_config=REDUCTION_HCA)
    clean = run_active_reduction(clean_tree, vectors, REDUCE_TO_ONE)

    # Seed chosen so the schedule puts retransmissions on the critical
    # path (some seeds inject only off-path faults, which cost nothing).
    tree, injector = _lossy_tree(16, seed=5)
    faulty = run_active_reduction(tree, vectors, REDUCE_TO_ONE)
    assert faulty.result_vector == clean.result_vector == _oracle(vectors)
    assert injector.total_injected > 0
    assert faulty.latency_ps > clean.latency_ps


def test_same_seed_reproduces_the_same_fault_schedule():
    runs = []
    for _ in range(2):
        vectors = _make_vectors(16)
        tree, injector = _lossy_tree(16, seed=11)
        result = run_active_reduction(tree, vectors, REDUCE_TO_ONE)
        runs.append((result.latency_ps, injector.fingerprint(),
                     injector.total_injected, tuple(result.result_vector)))
    assert runs[0] == runs[1]


def test_different_seeds_draw_different_schedules():
    fingerprints = set()
    for seed in (11, 12, 13):
        vectors = _make_vectors(16)
        tree, injector = _lossy_tree(16, seed=seed)
        result = run_active_reduction(tree, vectors, REDUCE_TO_ONE)
        assert result.result_vector == _oracle(vectors)
        fingerprints.add(injector.fingerprint())
    assert len(fingerprints) == 3


def test_plan_seed_reproduces_through_the_tree():
    """A seed carried in the plan itself beats the constructor seed, so
    a preset with a pinned seed is reproducible regardless of caller."""
    plan = FaultPlan(link=LOSSY.link, seed=11)
    results = []
    for constructor_seed in (0, 99):
        vectors = _make_vectors(16)
        tree, injector = _lossy_tree(16, seed=constructor_seed, plan=plan)
        result = run_active_reduction(tree, vectors, REDUCE_TO_ONE)
        results.append((result.latency_ps, injector.fingerprint()))
    assert results[0] == results[1]

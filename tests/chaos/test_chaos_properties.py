"""Chaos: property-based conservation laws for the recovery protocols.

Hypothesis drives random fault rates and seeds; the invariants must
hold for *every* schedule, not just hand-picked ones:

* link credits are conserved — every drop, corruption, and
  retransmission returns its credit, and delivery is exactly-once;
* disk retries balance — each transient error is paid for by exactly
  one retry, and successful requests account their bytes exactly once.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import DiskFaults, FaultInjector, FaultPlan, LinkFaults
from repro.io import Disk
from repro.net import Link, LinkConfig, Packet
from repro.sim import Environment
from repro.sim.units import us

pytestmark = pytest.mark.chaos

rates = st.floats(min_value=0.0, max_value=0.4)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


@settings(max_examples=30, deadline=None)
@given(drop_rate=rates, bit_error_rate=rates, seed=seeds,
       npackets=st.integers(min_value=1, max_value=12),
       credits=st.integers(min_value=1, max_value=4))
def test_link_credit_and_delivery_conservation(drop_rate, bit_error_rate,
                                               seed, npackets, credits):
    env = Environment()
    link = Link(env, "l", LinkConfig(credits=credits))
    # backoff_factor=1.0 keeps huge retry counts finite in float space;
    # max_retries is high enough that exhaustion is impossible at these
    # rates, so every packet must eventually be delivered.
    link.attach_faults(FaultInjector(FaultPlan(link=LinkFaults(
        drop_rate=drop_rate, bit_error_rate=bit_error_rate,
        ack_timeout_ps=us(1), backoff_factor=1.0, max_retries=200)),
        seed=seed))
    received = []

    def sender(env):
        for _ in range(npackets):
            yield from link.send(Packet("a", "b", payload_bytes=256))

    def receiver(env):
        for _ in range(npackets):
            packet = yield from link.receive()
            received.append(packet)

    env.process(sender(env))
    proc = env.process(receiver(env))
    env.run(until=proc)

    stats = link.stats
    # Exactly-once delivery of every intact packet.
    assert stats.packets_delivered == npackets
    assert len(received) == npackets
    assert not any(p.corrupted for p in received)
    # Every serialized copy lands in exactly one bucket.
    assert stats.packets_sent == (stats.packets_delivered +
                                  stats.packets_dropped +
                                  stats.packets_corrupted)
    # Every loss triggered exactly one retransmission.
    assert stats.retransmits == stats.packets_dropped + stats.packets_corrupted
    # All credits came home.
    link.assert_credit_conservation()
    assert link._credits.level == credits


@settings(max_examples=30, deadline=None)
@given(read_error_rate=st.floats(min_value=0.0, max_value=0.5), seed=seeds,
       nreq=st.integers(min_value=1, max_value=10))
def test_disk_retry_conservation(read_error_rate, seed, nreq):
    env = Environment()
    disk = Disk(env, "d")
    # max_retries=64 makes exhaustion impossible at rate <= 0.5.
    disk.attach_faults(FaultInjector(FaultPlan(disk=DiskFaults(
        read_error_rate=read_error_rate, retry_backoff_ps=1,
        max_retries=64)), seed=seed))

    def reader(env):
        for i in range(nreq):
            yield from disk.read(i * 4096, 1024)

    proc = env.process(reader(env))
    env.run(until=proc)

    stats = disk.stats
    # Each transient error is paid for by exactly one replay.
    assert stats.retries == stats.transient_errors
    # Successful requests account their bytes exactly once.
    assert stats.bytes_read == nreq * 1024
    assert stats.requests == nreq


@settings(max_examples=20, deadline=None)
@given(drop_rate=rates, seed=seeds)
def test_link_schedule_is_a_pure_function_of_the_seed(drop_rate, seed):
    def run():
        injector = FaultInjector(
            FaultPlan(link=LinkFaults(drop_rate=drop_rate)), seed=seed)
        outcomes = tuple(injector.link_outcome("l") for _ in range(50))
        return outcomes, injector.fingerprint()

    assert run() == run()

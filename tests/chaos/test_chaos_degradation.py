"""Chaos: crashing handlers, quarantine, and active->normal degradation.

Every scenario asserts *byte correctness*: whatever faults are injected,
the functional result delivered to the host equals the fault-free
oracle — the degraded path is slower, never wrong.
"""

import pytest

from repro.cluster import ClusterConfig
from repro.cluster.system import System
from repro.faults import FaultPlan, HandlerFaults
from repro.net.packet import ActiveHeader
from repro.sim.units import us

pytestmark = pytest.mark.chaos

H_DOUBLE = 7
VECTOR = [3, 1, 4, 1, 5, 9, 2, 6]


def _config(handler_faults):
    return ClusterConfig(active=True, num_hosts=2, num_storage=0,
                         faults=FaultPlan(handler=handler_faults))


def _install_doubler(system):
    """A handler that doubles the argument vector and ships it to host1."""

    def handler(ctx):
        yield from ctx.read(ctx.address, 512)
        doubled = [v * 2 for v in ctx.arg]
        yield from ctx.compute(len(doubled))
        yield from ctx.deallocate(ctx.address + 512)
        yield from ctx.send("host1", len(doubled) * 4, payload=doubled)

    system.switch.register_handler(H_DOUBLE, handler)


def _host_fallback(message):
    """Host-side recomputation of a degraded (raw) message."""
    return [v * 2 for v in message.payload]


def _run(system, num_messages, gap_ps=us(200), size_bytes=512,
         fallback="host1"):
    """host0 fires active messages; host1 collects whatever arrives.

    Returns the functional vectors host1 ends up with, applying the
    host-side fallback to raw (non-handler-produced) deliveries.
    """
    env = system.env
    results = []

    def sender(env):
        for i in range(num_messages):
            yield from system.hosts[0].hca.send(
                "sw0", size_bytes,
                active=ActiveHeader(handler_id=H_DOUBLE, address=0,
                                    fallback_dst=fallback),
                payload=list(VECTOR))
            yield env.timeout(gap_ps)

    def receiver(env, expected):
        for _ in range(expected):
            message = yield from system.hosts[1].hca.poll_receive()
            results.append(message)

    return env, sender, receiver, results


def test_contained_crash_degrades_to_byte_correct_fallback():
    system = System(_config(HandlerFaults(crash_invocations=((H_DOUBLE, 0),))))
    _install_doubler(system)
    env, sender, receiver, results = _run(system, num_messages=2)
    env.process(sender(env))
    proc = env.process(receiver(env, expected=2))
    env.run(until=proc)

    oracle = [v * 2 for v in VECTOR]
    # First message crashed: host1 got the raw vector and computes the
    # result itself.  Second ran on the switch.  Both byte-correct.
    outcomes = sorted(
        (tuple(m.payload if m.payload == oracle else _host_fallback(m))
         for m in results))
    assert outcomes == [tuple(oracle), tuple(oracle)]
    assert system.switch.degradation.contained_crashes == 1
    assert system.switch.degradation.fallback_messages == 1
    # One crash is under the default threshold: no quarantine.
    assert not system.switch.quarantined(H_DOUBLE)
    assert system.reliability_report()["handler_contained_crashes"] == 1.0


def test_repeated_crashes_quarantine_and_flush():
    system = System(_config(HandlerFaults(
        crash_invocations=((H_DOUBLE, 0), (H_DOUBLE, 1)),
        quarantine_threshold=2)))
    _install_doubler(system)

    def flush(ctx):
        yield from ctx.compute(1)
        yield from ctx.send("host1", 4, payload="FLUSH")

    system.switch.register_flush(H_DOUBLE, flush)
    env, sender, receiver, results = _run(system, num_messages=3)
    env.process(sender(env))
    # 2 crashed fallbacks + the flush message + 1 quarantine bypass.
    proc = env.process(receiver(env, expected=4))
    env.run(until=proc)

    oracle = [v * 2 for v in VECTOR]
    raw = [m for m in results if m.payload != "FLUSH"]
    assert len(raw) == 3
    # Every data message degraded to the raw vector: host recomputes.
    assert all(_host_fallback(m) == oracle for m in raw)
    assert [m.payload for m in results].count("FLUSH") == 1
    degradation = system.switch.degradation
    assert degradation.contained_crashes == 2
    assert degradation.quarantined_handlers == 1
    assert system.switch.quarantined(H_DOUBLE)
    assert system.switch.degraded_time_ps() > 0
    report = system.reliability_report()
    assert report["handler_quarantined"] == 1.0
    assert report["degraded_time_ps"] > 0
    assert report["injected_handler_crashes"] == 2.0


def test_crash_without_fallback_is_contained_but_lossy():
    """No fallback route: the message is lost, but the switch survives
    and keeps serving subsequent traffic."""
    system = System(_config(HandlerFaults(crash_invocations=((H_DOUBLE, 0),))))
    _install_doubler(system)
    env, sender, receiver, results = _run(system, num_messages=2,
                                          fallback=None)
    env.process(sender(env))
    proc = env.process(receiver(env, expected=1))
    env.run(until=proc)

    assert [m.payload for m in results] == [[v * 2 for v in VECTOR]]
    assert system.switch.degradation.contained_crashes == 1
    assert system.switch.degradation.fallback_messages == 0


def test_crash_on_multi_packet_message_reassembles_at_fallback():
    """A crashed multi-MTU stream: the raw first chunk re-emerges and the
    surviving continuation packets follow it to the fallback host, which
    reassembles them under the original message id."""
    system = System(_config(HandlerFaults(crash_invocations=((H_DOUBLE, 0),))))
    _install_doubler(system)
    env, sender, receiver, results = _run(system, num_messages=1,
                                          size_bytes=1024)
    env.process(sender(env))
    proc = env.process(receiver(env, expected=1))
    env.run(until=proc)

    assert len(results) == 1
    assert _host_fallback(results[0]) == [v * 2 for v in VECTOR]
    assert system.switch.degradation.contained_crashes == 1
    assert system.switch.degradation.fallback_messages == 1
    # Crash cleanup reclaimed the stream's buffers: none leaked.
    assert system.switch.buffers.in_use == 0


def test_atb_corruption_degrades_without_blaming_the_handler():
    system = System(_config(HandlerFaults(atb_corruption_rate=1.0)))
    _install_doubler(system)
    env, sender, receiver, results = _run(system, num_messages=2)
    env.process(sender(env))
    proc = env.process(receiver(env, expected=2))
    env.run(until=proc)

    oracle = [v * 2 for v in VECTOR]
    assert all(_host_fallback(m) == oracle for m in results)
    degradation = system.switch.degradation
    assert degradation.atb_corruptions == 2
    assert degradation.fallback_messages == 2
    # ATB parity is not the handler's fault: no crash count, no
    # quarantine — the handler would run fine on an intact mapping.
    assert degradation.contained_crashes == 0
    assert not system.switch.quarantined(H_DOUBLE)


def test_quarantined_traffic_is_slower_but_correct():
    """Degraded mode trades latency for availability: the bypass message
    reaches host1 later than a handler-processed one would have, but
    with identical bytes."""

    def run(handler_faults):
        system = System(_config(handler_faults))
        _install_doubler(system)
        env, sender, receiver, results = _run(system, num_messages=1)
        env.process(sender(env))
        proc = env.process(receiver(env, expected=1))
        env.run(until=proc)
        return env.now, results[0]

    clean_time, clean = run(HandlerFaults(crash_invocations=((63, 0),)))
    degraded_time, degraded = run(HandlerFaults(
        crash_invocations=((H_DOUBLE, 0),), quarantine_threshold=1))
    assert clean.payload == [v * 2 for v in VECTOR]
    assert _host_fallback(degraded) == clean.payload
    assert degraded_time != clean_time

"""Chaos: hierarchical aggregation over lossy multi-stage fabrics.

Faults attach to every link and switch of a multi-hop fabric (fat-tree
ECMP core included); the CRC + NACK/retransmission machinery must hide
all of it — placed reductions stay bit-identical to the fault-free
oracle, and identical seeds reproduce identical fault schedules.
"""

import pytest

from repro.apps.reduction import REDUCTION_HCA, _make_vectors, _oracle
from repro.cluster.fabric import TopologySpec, build_fabric
from repro.cluster.placement import plan_placement, run_placed_reduction
from repro.faults import FaultInjector, FaultPlan, LinkFaults
from repro.sim import Environment

pytestmark = pytest.mark.chaos

LOSSY = FaultPlan(link=LinkFaults(drop_rate=0.1, bit_error_rate=0.05))


def _lossy_fabric(kind, hosts, seed, plan=LOSSY):
    env = Environment()
    injector = FaultInjector(plan, seed=seed)
    fabric = build_fabric(env, TopologySpec(kind=kind, num_hosts=hosts),
                          hca_config=REDUCTION_HCA, injector=injector)
    return fabric, injector


def _total_retransmits(fabric):
    total = 0
    for node in fabric.switches:
        for link in node.switch._tx_links:
            if link is not None:
                total += link.stats.retransmits
    for host in fabric.hosts:
        if host.hca._tx_link is not None:
            total += host.hca._tx_link.stats.retransmits
    return total


@pytest.mark.parametrize("kind", ["tree", "fat_tree"])
@pytest.mark.parametrize("policy", ["per_level", "root_only"])
def test_lossy_fabric_reduction_is_exact(kind, policy):
    fabric, _ = _lossy_fabric(kind, 32, seed=7)
    vectors = _make_vectors(32)
    done = run_placed_reduction(fabric, plan_placement(fabric, policy),
                                vectors)
    assert done["result"] == _oracle(vectors)
    assert _total_retransmits(fabric) > 0  # the plan actually bit


def test_fault_schedule_reproduces_with_seed():
    latencies = []
    for _ in range(2):
        fabric, _ = _lossy_fabric("fat_tree", 32, seed=11)
        done = run_placed_reduction(
            fabric, plan_placement(fabric, "per_level"), _make_vectors(32))
        latencies.append((done["latency_ps"], _total_retransmits(fabric)))
    assert latencies[0] == latencies[1]


def test_different_seeds_give_different_schedules():
    outcomes = set()
    for seed in (1, 2, 3):
        fabric, _ = _lossy_fabric("tree", 32, seed=seed)
        done = run_placed_reduction(
            fabric, plan_placement(fabric, "per_level"), _make_vectors(32))
        outcomes.add(done["latency_ps"])
    assert len(outcomes) > 1


def test_chaos_preset_through_run_front_door():
    """repro.run wires config.faults into the fabric builder."""
    import repro

    result = repro.run("reduce", topology="fat_tree", hosts=32,
                       placement="per_level", preset="chaos_2003",
                       cases=("active",))
    case = result.cases["active"]
    # The oracle assert inside run_case already guarantees correctness;
    # the report must carry the fault-accounting keys.
    assert "link_retransmits" in case.extra
    assert case.extra["fabric_depth"] == 2.0

"""Chaos: the block-I/O benchmark pipeline over failing disks.

The app kernels must produce identical functional traffic with disks
that throw transient errors — recovery costs time, never data — and a
seeded run must reproduce exactly.
"""

import dataclasses

import pytest

from repro.apps.base import BlockWork, StreamApp
from repro.faults import DiskFaults, FaultPlan

pytestmark = pytest.mark.chaos


class _ToyApp(StreamApp):
    """Six blocks of real disk traffic with a little host work."""

    name = "chaos-toy"
    request_bytes = 64 * 1024

    def prepare(self):
        self.blocks = [
            BlockWork(nbytes=64 * 1024, host_cycles=1000,
                      handler_cycles=500, out_bytes=512,
                      active_host_cycles=100)
            for _ in range(6)
        ]


def _run(faults, label="normal", seed=0):
    app = _ToyApp()
    config = dataclasses.replace(app.cluster_config(), seed=seed,
                                 faults=faults)
    config = config.with_case(active=label.startswith("active"),
                              prefetch=label.endswith("+pref"))
    return app.run_case(config)


FLAKY_DISKS = FaultPlan(disk=DiskFaults(read_error_rate=0.2))


@pytest.mark.parametrize("label", ["normal", "active+pref"])
def test_disk_errors_slow_the_run_but_not_the_bytes(label):
    clean = _run(None, label)
    faulty = _run(FLAKY_DISKS, label)
    # Errors were injected and retried...
    assert faulty.extra["disk_transient_errors"] > 0
    assert faulty.extra["disk_retries"] > 0
    assert faulty.extra["injected_disk_errors"] > 0
    # ...which costs wall-clock time...
    assert faulty.exec_ps > clean.exec_ps
    # ...but the host saw the exact same functional traffic.
    assert faulty.host_bytes_in == clean.host_bytes_in
    assert faulty.host_bytes_out == clean.host_bytes_out
    # And the clean run pays zero cost for the fault machinery.
    assert clean.extra == {}


def test_seeded_chaos_run_is_bit_for_bit_reproducible():
    first = _run(FLAKY_DISKS, "normal", seed=7)
    second = _run(FLAKY_DISKS, "normal", seed=7)
    assert first.exec_ps == second.exec_ps
    assert first.extra == second.extra


def test_config_seed_changes_the_fault_schedule():
    outcomes = {(_run(FLAKY_DISKS, "normal", seed=s).exec_ps,)
                for s in (1, 2, 3, 4)}
    assert len(outcomes) > 1


def test_reliability_report_reaches_the_case_result():
    faulty = _run(FLAKY_DISKS, "normal")
    # The run report carries the recovery metrics for the tables.
    for key in ("disk_transient_errors", "disk_retries",
                "injected_disk_errors"):
        assert key in faulty.extra

"""Unit coverage for the BENCH snapshot harness (:mod:`repro.bench`).

The bench is CI tooling: its comparison logic decides whether the
smoke job fails, so its edge cases — flavor mismatches between quick
and full snapshots, baseline auto-selection, service-cell key
uniqueness — are pinned here rather than discovered in a red pipeline.
"""

import json

import pytest

from repro.bench import (compare, load, previous_bench_path, save,
                         service_cell_key, service_grid, sweep_cell_key,
                         sweep_grid)


def _doc(quick, apps, cells=None, bench_id=1):
    return {
        "schema": "repro-bench/1", "bench_id": bench_id, "quick": quick,
        "apps": {label: {"wall_s": wall} for label, wall in apps.items()},
        "cells": {key: {"wall_s": wall}
                  for key, wall in (cells or {}).items()},
    }


def test_compare_flags_regression_and_warning():
    baseline = _doc(False, {"grep": 1.0, "sort": 1.0})
    current = _doc(False, {"grep": 1.5, "sort": 1.1})
    verdict = compare(current, baseline, threshold=0.30)
    assert not verdict["ok"]
    assert any("grep" in r for r in verdict["regressions"])
    assert any("sort" in w for w in verdict["warnings"])


def test_compare_flavor_mismatch_restricts_to_service_cells():
    """A quick run against a full baseline (different workload scales)
    must not fail on grid walls — only the scale-independent serve:*
    cells compare, and the restriction is recorded as a warning."""
    baseline = _doc(False, {"grep": 0.1, "serve:grep:x": 1.0},
                    cells={"grep/normal": 0.1, "serve:grep:x": 1.0})
    current = _doc(True, {"grep": 5.0, "serve:grep:x": 1.1},
                   cells={"grep/normal": 5.0, "serve:grep:x": 1.1})
    verdict = compare(current, baseline, threshold=0.30)
    assert verdict["ok"]  # the 50x grid "regression" is a scale artifact
    assert list(verdict["apps"]) == ["serve:grep:x"]
    assert list(verdict["cells"]) == ["serve:grep:x"]
    assert any("flavor mismatch" in w for w in verdict["warnings"])


def test_compare_flavor_mismatch_still_gates_service_cells():
    baseline = _doc(False, {"serve:grep:x": 1.0})
    current = _doc(True, {"serve:grep:x": 2.0})
    verdict = compare(current, baseline, threshold=0.30)
    assert not verdict["ok"]


def test_previous_bench_path_prefers_same_flavor(tmp_path):
    save(_doc(False, {"grep": 1.0}, bench_id=5), tmp_path / "BENCH_5.json")
    save(_doc(True, {"grep": 1.0}, bench_id=6), tmp_path / "BENCH_6.json")
    assert previous_bench_path(tmp_path).endswith("BENCH_6.json")
    assert previous_bench_path(tmp_path, quick=False).endswith("BENCH_5.json")
    assert previous_bench_path(tmp_path, quick=True).endswith("BENCH_6.json")
    # No same-flavor candidate: fall back to the newest snapshot.
    (tmp_path / "BENCH_5.json").unlink()
    assert previous_bench_path(tmp_path, quick=False).endswith("BENCH_6.json")


def test_previous_bench_path_empty(tmp_path):
    assert previous_bench_path(tmp_path) is None


def test_save_load_roundtrip(tmp_path):
    doc = _doc(True, {"grep": 1.0})
    path = tmp_path / "BENCH_7.json"
    save(doc, path)
    assert load(path) == doc
    save({"not": "a snapshot"}, tmp_path / "bad.json")
    with pytest.raises(ValueError):
        load(tmp_path / "bad.json")


def test_service_grid_keys_are_unique():
    keys = [service_cell_key(spec) for spec in service_grid()]
    assert len(keys) == len(set(keys))
    assert all(key.startswith("serve:") for key in keys)
    # The two fat-tree cells differ only by fabric size; the key must
    # carry it.
    assert any("hosts=16" in key for key in keys)
    assert any("hosts=64" in key for key in keys)


def test_compare_flavor_mismatch_keeps_sweep_cells():
    baseline = _doc(False, {"grep": 0.1, "sweep:grep:x": 1.0})
    current = _doc(True, {"grep": 5.0, "sweep:grep:x": 1.1})
    verdict = compare(current, baseline, threshold=0.30)
    assert verdict["ok"]
    assert list(verdict["apps"]) == ["sweep:grep:x"]


def test_sweep_grid_keys_are_unique():
    keys = [sweep_cell_key(spec) for spec, _rates in sweep_grid()]
    assert len(keys) == len(set(keys))
    assert all(key.startswith("sweep:") for key in keys)


def test_committed_snapshot_documents_sweep_speedup():
    """BENCH_10.json carries the adaptive-knee acceptance numbers: every
    sweep:* cell re-ran the exhaustive grid reference, proved the knees
    equal, and must document >=3x fewer service simulations (see
    docs/performance.md)."""
    doc = load("BENCH_10.json")
    sweeps = {k: v for k, v in doc["cells"].items()
              if k.startswith("sweep:")}
    assert len(sweeps) == 3
    for key, cell in sweeps.items():
        assert cell["grid_sims"] / cell["sims"] >= 3.0, (key, cell)
        assert cell["wall_s"] < cell["grid_wall_s"], (key, cell)


def test_committed_snapshot_documents_service_speedup():
    """BENCH_9.json carries the burst-vs-per-block acceptance numbers:
    every service/fabric cell re-ran the per-block reference and must
    document at least a 3x speedup (see docs/scaling.md)."""
    doc = load("BENCH_9.json")
    serve = {k: v for k, v in doc["cells"].items()
             if k.startswith("serve:")}
    assert len(serve) == 3
    for key, cell in serve.items():
        assert cell["speedup_vs_perblock"] >= 3.0, (key, cell)
        assert cell["requests_dropped"] == 0

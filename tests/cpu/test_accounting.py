"""Unit tests for CPU time accounting and breakdowns."""

import pytest

from repro.cpu import Breakdown, CpuAccounting


def test_breakdown_idle_is_remainder():
    b = Breakdown("x", exec_ps=100, busy_ps=40, stall_ps=25)
    assert b.idle_ps == 35
    assert b.busy_frac == pytest.approx(0.40)
    assert b.stall_frac == pytest.approx(0.25)
    assert b.idle_frac == pytest.approx(0.35)


def test_breakdown_utilization_matches_paper_definition():
    # utilization = (1 - idle/exec)
    b = Breakdown("x", exec_ps=200, busy_ps=100, stall_ps=50)
    assert b.utilization == pytest.approx(0.75)


def test_breakdown_idle_clamped_nonnegative():
    b = Breakdown("x", exec_ps=10, busy_ps=20, stall_ps=0)
    assert b.idle_ps == 0


def test_breakdown_zero_exec_time():
    b = Breakdown("x", exec_ps=0, busy_ps=0, stall_ps=0)
    assert b.utilization == 0.0
    assert b.busy_frac == 0.0


def test_accounting_accumulates():
    acc = CpuAccounting("cpu")
    acc.add_busy(10)
    acc.add_busy(5)
    acc.add_stall(3)
    assert acc.busy_ps == 15
    assert acc.stall_ps == 3


def test_accounting_rejects_negative():
    acc = CpuAccounting("cpu")
    with pytest.raises(ValueError):
        acc.add_busy(-1)
    with pytest.raises(ValueError):
        acc.add_stall(-1)


def test_accounting_finalize():
    acc = CpuAccounting("cpu")
    acc.add_busy(60)
    acc.add_stall(20)
    b = acc.finalize(exec_ps=100)
    assert b.label == "cpu"
    assert b.idle_ps == 20


def test_accounting_reset():
    acc = CpuAccounting("cpu")
    acc.add_busy(60)
    acc.reset()
    assert acc.busy_ps == 0
    assert acc.stall_ps == 0


def test_breakdown_str_contains_fractions():
    text = str(Breakdown("n-HP", exec_ps=100, busy_ps=50, stall_ps=25))
    assert "n-HP" in text
    assert "50.0%" in text

"""Unit tests for host and switch CPU models."""

import pytest

from repro.cpu import HostCPU, SwitchCPU
from repro.mem import build_host_hierarchy
from repro.sim import Clock, Environment


def make_host(env):
    clock = Clock(2_000_000_000)
    return HostCPU(env, build_host_hierarchy(clock), clock=clock)


def test_host_clock_is_2ghz():
    env = Environment()
    assert make_host(env).clock.period_ps == 500


def test_switch_clock_is_500mhz():
    env = Environment()
    assert SwitchCPU(env).clock.period_ps == 2000


def test_host_is_4x_switch_speed():
    env = Environment()
    host = make_host(env)
    switch = SwitchCPU(env)
    assert switch.clock.period_ps == 4 * host.clock.period_ps


def test_host_work_advances_time_and_accounts():
    env = Environment()
    host = make_host(env)

    def program(env):
        yield from host.work(busy_cycles=1000, stall_ps=500)

    env.process(program(env))
    env.run()
    assert env.now == 1000 * 500 + 500
    assert host.accounting.busy_ps == 500_000
    assert host.accounting.stall_ps == 500


def test_host_zero_work_takes_no_time():
    env = Environment()
    host = make_host(env)

    def program(env):
        yield from host.work(busy_cycles=0)
        return env.now

    proc = env.process(program(env))
    assert env.run(until=proc) == 0


def test_host_busy_and_stall_buckets_separate():
    env = Environment()
    host = make_host(env)

    def program(env):
        yield from host.busy(1000)
        yield from host.stall(2000)

    env.process(program(env))
    env.run()
    assert host.accounting.busy_ps == 1000
    assert host.accounting.stall_ps == 2000


def test_host_reference_cost_uses_hierarchy():
    env = Environment()
    host = make_host(env)
    stall = host.reference_cost(loads=[0x1000])
    assert stall > 0  # cold miss
    assert host.reference_cost(loads=[0x1000]) == 0  # warm


def test_host_scan_cost():
    env = Environment()
    host = make_host(env)
    assert host.scan_cost(0, 4096) > 0
    assert host.scan_cost(0, 4096) == 0  # resident now


def test_switch_work_is_slower_per_cycle():
    env = Environment()
    host = make_host(env)
    switch = SwitchCPU(env)

    def host_prog(env):
        yield from host.work(busy_cycles=100)
        return env.now

    proc = env.process(host_prog(env))
    host_time = env.run(until=proc)

    env2 = Environment()
    switch2 = SwitchCPU(env2)

    def switch_prog(env):
        yield from switch2.work(busy_cycles=100)
        return env.now

    proc2 = env2.process(switch_prog(env2))
    switch_time = env2.run(until=proc2)
    assert switch_time == 4 * host_time


def test_switch_isa_extension_charges():
    env = Environment()
    switch = SwitchCPU(env)

    def program(env):
        yield from switch.send_buffer()
        yield from switch.release_buffer()

    env.process(program(env))
    env.run()
    # 4 + 2 cycles at 2000 ps.
    assert switch.accounting.busy_ps == 6 * 2000


def test_switch_has_tiny_caches():
    env = Environment()
    switch = SwitchCPU(env)
    assert switch.hierarchy.l1d.config.size_bytes == 1024
    assert switch.hierarchy.l2 is None


def test_switch_cache_cost_warm_vs_cold():
    env = Environment()
    switch = SwitchCPU(env)
    cold = switch.cache_cost(0x100)
    warm = switch.cache_cost(0x100)
    assert cold > 0
    assert warm == 0


def test_switch_ids_distinguish_cores():
    env = Environment()
    cpus = [SwitchCPU(env, cpu_id=i) for i in range(4)]
    assert [c.name for c in cpus] == [
        "switch-cpu0", "switch-cpu1", "switch-cpu2", "switch-cpu3"]

"""Storage-layer recovery: transient disk errors and SCSI parity retries."""

import pytest

from repro.faults import DiskFaults, FaultInjector, FaultPlan, ScsiFaults
from repro.io import Disk, DiskArray, DiskError, ScsiBus, ScsiError
from repro.sim import Environment
from repro.sim.units import us


def _disk_injector(disk_faults, seed=0):
    return FaultInjector(FaultPlan(disk=disk_faults), seed=seed)


# ----------------------------------------------------------------------
# Disk transient errors
# ----------------------------------------------------------------------
def test_transient_read_error_is_retried_and_succeeds():
    env = Environment()
    disk = Disk(env, "d")
    disk.attach_faults(_disk_injector(DiskFaults(error_requests=(0,))))

    proc = env.process(disk.read(0, 4096))
    env.run(until=proc)
    assert disk.stats.transient_errors == 1
    assert disk.stats.retries == 1
    # The data is accounted exactly once despite the replay.
    assert disk.stats.bytes_read == 4096
    assert disk.stats.requests == 1


def test_transient_error_costs_time_and_repositioning():
    clean_env = Environment()
    clean = Disk(clean_env, "d")
    proc = clean_env.process(clean.read(0, 4096))
    clean_env.run(until=proc)
    clean_time = clean_env.now

    env = Environment()
    disk = Disk(env, "d")
    disk.attach_faults(_disk_injector(
        DiskFaults(error_requests=(0,), retry_backoff_ps=us(500))))
    proc = env.process(disk.read(0, 4096))
    env.run(until=proc)
    # Half a wasted transfer, the firmware backoff, and a second
    # positioning (the recalibration invalidated the head).
    assert env.now > clean_time + us(500)
    assert disk.stats.positioning_ps > clean.stats.positioning_ps


def test_disk_error_after_bounded_retries():
    env = Environment()
    disk = Disk(env, "d")
    disk.attach_faults(_disk_injector(
        DiskFaults(error_requests=(0, 1), max_retries=1,
                   retry_backoff_ps=us(1))))
    failures = []

    def reader(env):
        try:
            yield from disk.read(0, 1024)
        except DiskError as exc:
            failures.append(exc)

    env.process(reader(env))
    env.run()
    assert len(failures) == 1
    assert disk.stats.transient_errors == 2
    assert disk.stats.retries == 1
    assert disk.stats.bytes_read == 0


def test_write_errors_use_the_write_rate():
    env = Environment()
    disk = Disk(env, "d")
    disk.attach_faults(_disk_injector(
        DiskFaults(write_error_rate=1.0, max_retries=0)))
    failures = []

    def writer(env):
        try:
            yield from disk.write(0, 1024)
        except DiskError as exc:
            failures.append(exc)

    env.process(writer(env))
    env.run()
    assert len(failures) == 1
    # Reads are unaffected: the read rate is zero.
    proc = env.process(disk.read(0, 1024))
    env.run(until=proc)
    assert disk.stats.bytes_read == 1024


def test_disk_array_aggregates_fault_counters():
    env = Environment()
    array = DiskArray(env, num_disks=2)
    array.attach_faults(_disk_injector(
        DiskFaults(error_requests=(0,), retry_backoff_ps=us(1))))
    proc = env.process(array.read(0, 8192))
    env.run(until=proc)
    # Request 0 on each spindle was scripted to fail once.
    assert array.transient_errors == 2
    assert array.retries == 2
    assert array.bytes_read == 8192


def test_fault_free_disk_timing_unchanged_by_attachment():
    """Attaching an injector with a disabled disk plan costs nothing."""
    plain_env = Environment()
    plain = Disk(plain_env, "d")
    proc = plain_env.process(plain.read(0, 65536))
    plain_env.run(until=proc)

    env = Environment()
    disk = Disk(env, "d")
    disk.attach_faults(_disk_injector(DiskFaults()))
    proc = env.process(disk.read(0, 65536))
    env.run(until=proc)
    assert env.now == plain_env.now


# ----------------------------------------------------------------------
# SCSI parity errors
# ----------------------------------------------------------------------
class _ScriptedScsi:
    """Injector stub answering scsi_error from a fixed script."""

    def __init__(self, script, max_retries=4):
        self.plan = FaultPlan(scsi=ScsiFaults(error_rate=0.5,
                                              max_retries=max_retries))
        self._script = list(script)

    def scsi_error(self, bus_name):
        return self._script.pop(0) if self._script else False


def test_scsi_parity_error_is_replayed():
    env = Environment()
    bus = ScsiBus(env, "bus")
    bus.attach_faults(_ScriptedScsi([True, False]))
    proc = env.process(bus.transaction(4096))
    env.run(until=proc)
    assert bus.stats.parity_errors == 1
    assert bus.stats.retries == 1
    assert bus.stats.transactions == 1
    assert bus.stats.bytes == 4096
    # The wasted attempt still occupied the bus.
    assert bus.stats.busy_ps == 2 * bus.occupancy_ps(4096)


def test_scsi_error_after_bounded_retries():
    env = Environment()
    bus = ScsiBus(env, "bus")
    bus.attach_faults(_ScriptedScsi([True] * 10, max_retries=2))
    failures = []

    def initiator(env):
        try:
            yield from bus.transaction(1024)
        except ScsiError as exc:
            failures.append(exc)

    env.process(initiator(env))
    env.run()
    assert len(failures) == 1
    assert bus.stats.parity_errors == 3
    assert bus.stats.retries == 2
    assert bus.stats.transactions == 0


def test_scsi_random_errors_are_deterministic():
    def run(seed):
        env = Environment()
        bus = ScsiBus(env, "bus")
        bus.attach_faults(FaultInjector(
            FaultPlan(scsi=ScsiFaults(error_rate=0.4, max_retries=50)),
            seed=seed))

        def initiator(env):
            for _ in range(20):
                yield from bus.transaction(512)

        proc = env.process(initiator(env))
        env.run(until=proc)
        return bus.stats.parity_errors, env.now

    assert run(3) == run(3)
    assert run(3)[1] != run(4)[1] or run(3)[0] != run(4)[0]

"""Unit tests for active storage devices and the two-level experiment."""

import pytest

from repro.cluster import ClusterConfig
from repro.experiments.two_level import compare_filter_placement
from repro.io.active_storage import ActiveStorageConfig, ActiveStorageNode
from repro.sim import Environment
from repro.sim.units import ms


def make_node(**kwargs):
    env = Environment()
    node = ActiveStorageNode(env, "astor0", ClusterConfig(),
                             ActiveStorageConfig(**kwargs))
    return env, node


def test_device_cpu_is_drive_class():
    env, node = make_node()
    assert node.cpu.clock.freq_hz == 200e6


def test_filtered_read_ships_only_survivors():
    env, node = make_node()

    def reader(env):
        yield from node.serve_filtered_read(0, 65536, filter_cycles=5000,
                                            out_bytes=16384)

    env.process(reader(env))
    env.run()
    assert node.unfiltered_bytes_read == 65536
    assert node.filtered_bytes_out == 16384
    assert node.tca.traffic.bytes_out == 16384
    assert node.disks.bytes_read == 65536


def test_filter_overlaps_disk_stream():
    """Cheap filtering adds (almost) nothing over a plain read."""
    env1, node1 = make_node()

    def plain(env):
        yield from node1.serve_read(0, 1_000_000)
        return env.now

    proc = env1.process(plain(env1))
    plain_time = env1.run(until=proc)

    env2, node2 = make_node()

    def filtered(env):
        yield from node2.serve_filtered_read(0, 1_000_000,
                                             filter_cycles=1000,
                                             out_bytes=250_000)
        return env.now

    proc = env2.process(filtered(env2))
    filtered_time = env2.run(until=proc)
    assert filtered_time - plain_time < ms(0.1)


def test_slow_filter_becomes_the_bottleneck():
    """A heavy filter on the 200 MHz core dominates the disk stream."""
    env, node = make_node()
    heavy_cycles = 10_000_000  # 50 ms at 200 MHz >> 10 ms disk transfer

    def reader(env):
        yield from node.serve_filtered_read(0, 1_000_000,
                                            filter_cycles=heavy_cycles,
                                            out_bytes=1000)
        return env.now

    proc = env.process(reader(env))
    elapsed = env.run(until=proc)
    assert elapsed >= ms(50)
    assert node.cpu.accounting.busy_ps >= ms(50)


def test_filtered_read_validates_output_size():
    env, node = make_node()
    with pytest.raises(ValueError):
        list(node.serve_filtered_read(0, 1000, filter_cycles=1,
                                      out_bytes=1001))


def test_config_validation():
    with pytest.raises(ValueError):
        ActiveStorageConfig(cpu_freq_hz=0)
    with pytest.raises(ValueError):
        ActiveStorageConfig(filter_setup_ps=-1)


def test_plain_read_write_match_passive_interface():
    env, node = make_node()

    def worker(env):
        yield from node.serve_read(0, 4096)
        yield from node.serve_write(4096, 4096)

    env.process(worker(env))
    env.run()
    assert node.tca.traffic.bytes_out == 4096
    assert node.tca.traffic.bytes_in == 4096


# ----------------------------------------------------------------------
# The placement comparison
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def placement_rows():
    return compare_filter_placement(scale=1 / 256)


def test_all_placements_disk_bound(placement_rows):
    times = [row["exec_ms"] for row in placement_rows]
    assert max(times) / min(times) < 1.10


def test_device_minimizes_fabric_bytes(placement_rows):
    by = {row["placement"]: row for row in placement_rows}
    assert by["device"]["fabric_bytes"] < by["two-level"]["fabric_bytes"]
    assert by["two-level"]["fabric_bytes"] < by["switch"]["fabric_bytes"]
    assert by["switch"]["fabric_bytes"] == by["host"]["fabric_bytes"]


def test_all_active_placements_cut_host_traffic(placement_rows):
    by = {row["placement"]: row for row in placement_rows}
    for placement in ("switch", "device", "two-level"):
        assert by[placement]["host_in_bytes"] < by["host"]["host_in_bytes"]


def test_host_filter_costs_host_cycles(placement_rows):
    by = {row["placement"]: row for row in placement_rows}
    assert by["host"]["host_busy_frac"] > 3 * by["switch"]["host_busy_frac"]

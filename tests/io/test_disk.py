"""Unit tests for disk and disk-array models."""

import pytest

from repro.io import Disk, DiskArray, DiskConfig
from repro.sim import Environment
from repro.sim.units import ms, seconds


def test_first_read_pays_positioning():
    env = Environment()
    disk = Disk(env, "d0")

    def reader(env):
        yield from disk.read(0, 1024)
        return env.now

    proc = env.process(reader(env))
    elapsed = env.run(until=proc)
    config = disk.config
    expected = (config.seek_ps + config.half_rotation_ps
                + round(1024 / config.bandwidth_bytes_per_s * 1e12))
    assert elapsed == expected


def test_sequential_read_skips_positioning():
    env = Environment()
    disk = Disk(env, "d0")
    times = []

    def reader(env):
        yield from disk.read(0, 1024)
        times.append(env.now)
        yield from disk.read(1024, 1024)  # continues where we left off
        times.append(env.now)

    env.process(reader(env))
    env.run()
    first = times[0]
    second_duration = times[1] - times[0]
    assert second_duration < first  # no seek the second time
    assert disk.stats.sequential_requests == 1


def test_random_read_pays_positioning_again():
    env = Environment()
    disk = Disk(env, "d0")

    def reader(env):
        yield from disk.read(0, 1024)
        yield from disk.read(10_000_000, 1024)

    env.process(reader(env))
    env.run()
    assert disk.stats.sequential_requests == 0
    assert disk.stats.positioning_ps == 2 * (disk.config.seek_ps
                                             + disk.config.half_rotation_ps)


def test_half_rotation_latency_10000rpm():
    config = DiskConfig(rpm=10_000)
    # 10 000 rpm = 6 ms/rev -> 3 ms half rotation.
    assert config.half_rotation_ps == ms(3)


def test_disk_arm_serializes_requests():
    env = Environment()
    disk = Disk(env, "d0")
    completions = []

    def reader(env, offset):
        yield from disk.read(offset, 50_000_000)  # 1 s of transfer at 50 MB/s
        completions.append(env.now)

    env.process(reader(env, 0))
    env.process(reader(env, 50_000_000))
    env.run()
    # The second (sequential) read cannot start before the first ends.
    assert completions[1] >= completions[0] + seconds(1) - ms(1)


def test_array_aggregate_bandwidth():
    env = Environment()
    array = DiskArray(env, num_disks=2)
    assert array.aggregate_bandwidth == pytest.approx(100e6)


def test_array_parallel_read_takes_half_the_time():
    env = Environment()
    single = Disk(env, "solo")
    array = DiskArray(env, num_disks=2)

    def read_array(env):
        yield from array.read(0, 10_000_000)
        return env.now

    proc = env.process(read_array(env))
    array_time = env.run(until=proc)

    env2 = Environment()
    solo = Disk(env2, "solo")

    def read_single(env):
        yield from solo.read(0, 10_000_000)
        return env.now

    proc2 = env2.process(read_single(env2))
    single_time = env2.run(until=proc2)
    assert array_time < single_time
    # 10 MB at 100 MB/s ~ 0.1 s (plus positioning); at 50 MB/s ~ 0.2 s.
    assert array_time == pytest.approx(single_time / 2, rel=0.1)


def test_array_transfer_analytic():
    env = Environment()
    array = DiskArray(env, num_disks=2)
    # 100 MB at 100 MB/s = 1 s.
    assert array.transfer_ps(100_000_000) == seconds(1)


def test_read_size_validation():
    env = Environment()
    disk = Disk(env, "d0")
    with pytest.raises(ValueError):
        list(disk.read(0, 0))
    array = DiskArray(env)
    with pytest.raises(ValueError):
        list(array.read(0, -1))


def test_config_validation():
    with pytest.raises(ValueError):
        DiskConfig(seek_ps=-1)
    with pytest.raises(ValueError):
        DiskConfig(rpm=0)
    with pytest.raises(ValueError):
        DiskConfig(bandwidth_bytes_per_s=0)
    env = Environment()
    with pytest.raises(ValueError):
        DiskArray(env, num_disks=0)

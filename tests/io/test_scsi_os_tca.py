"""Unit tests for the SCSI bus, OS cost model, and TCA."""

import pytest

from repro.io import OsCostModel, ScsiBus, ScsiConfig, TCA, TcaConfig
from repro.io.os_model import OsCostConfig
from repro.sim import Environment
from repro.sim.units import us


# ----------------------------------------------------------------------
# SCSI
# ----------------------------------------------------------------------
def test_transaction_includes_arbitration_and_selection():
    env = Environment()
    bus = ScsiBus(env)

    def worker(env):
        yield from bus.transaction(0)
        return env.now

    proc = env.process(worker(env))
    assert env.run(until=proc) == us(1.5)


def test_transfer_at_320mbs():
    env = Environment()
    bus = ScsiBus(env)
    # 320 KB at 320 MB/s = 1 ms = 1000 us, plus 1.5 us overhead.
    assert bus.occupancy_ps(320_000) == us(1.5) + us(1000)


def test_bus_serializes_transactions():
    env = Environment()
    bus = ScsiBus(env)
    completions = []

    def worker(env):
        yield from bus.transaction(3_200_000)  # 10 ms
        completions.append(env.now)

    env.process(worker(env))
    env.process(worker(env))
    env.run()
    assert completions[1] >= 2 * completions[0] - us(10)


def test_scsi_stats():
    env = Environment()
    bus = ScsiBus(env)

    def worker(env):
        yield from bus.transaction(1000)

    env.process(worker(env))
    env.run()
    assert bus.stats.transactions == 1
    assert bus.stats.bytes == 1000


def test_scsi_config_validation():
    with pytest.raises(ValueError):
        ScsiConfig(bandwidth_bytes_per_s=0)
    with pytest.raises(ValueError):
        ScsiConfig(arbitration_ps=-1)


# ----------------------------------------------------------------------
# OS cost model
# ----------------------------------------------------------------------
def test_paper_constants():
    model = OsCostModel()
    # 30 us fixed for a zero-byte request.
    assert model.request_cost_ps(0) == us(30)


def test_per_kb_charge():
    model = OsCostModel()
    # 64 KB request: 30 us + 64 * 0.27 us = 47.28 us.
    assert model.request_cost_ps(64 * 1024) == us(30) + 64 * us(0.27)


def test_os_model_accumulates():
    model = OsCostModel()
    model.request_cost_ps(1024)
    model.request_cost_ps(1024)
    assert model.requests == 2
    assert model.total_ps == 2 * (us(30) + us(0.27))


def test_os_model_rejects_negative():
    with pytest.raises(ValueError):
        OsCostModel().request_cost_ps(-1)


def test_os_config_validation():
    with pytest.raises(ValueError):
        OsCostConfig(fixed_per_request_ps=-1)


# ----------------------------------------------------------------------
# TCA
# ----------------------------------------------------------------------
def test_tca_request_processing_time():
    env = Environment()
    tca = TCA(env, "tca0")

    def worker(env):
        yield from tca.process_request()
        return env.now

    proc = env.process(worker(env))
    assert env.run(until=proc) == us(2)


def test_tca_has_no_host_overheads():
    env = Environment()
    tca = TCA(env, "tca0")
    assert tca.config.send_overhead_ps == 0
    assert tca.config.recv_poll_ps == 0


def test_tca_config_validation():
    with pytest.raises(ValueError):
        TcaConfig(request_processing_ps=-1)

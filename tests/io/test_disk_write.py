"""Unit tests for the disk/storage write path."""

import pytest

from repro.cluster import ClusterConfig, System
from repro.io import Disk, DiskArray
from repro.sim import Environment
from repro.sim.units import seconds


def test_write_pays_positioning_then_streams():
    env = Environment()
    disk = Disk(env, "d0")

    def writer(env):
        yield from disk.write(0, 50_000_000)  # 1 s at 50 MB/s
        return env.now

    proc = env.process(writer(env))
    elapsed = env.run(until=proc)
    assert elapsed >= seconds(1)
    assert disk.stats.bytes_written == 50_000_000


def test_sequential_write_skips_positioning():
    env = Environment()
    disk = Disk(env, "d0")

    def writer(env):
        yield from disk.write(0, 1024)
        yield from disk.write(1024, 1024)

    env.process(writer(env))
    env.run()
    assert disk.stats.sequential_requests == 1


def test_read_then_sequential_write_shares_head_position():
    env = Environment()
    disk = Disk(env, "d0")

    def worker(env):
        yield from disk.read(0, 4096)
        yield from disk.write(4096, 4096)  # continues from read's end

    env.process(worker(env))
    env.run()
    assert disk.stats.sequential_requests == 1


def test_array_write_stripes_across_spindles():
    env = Environment()
    array = DiskArray(env, num_disks=2)

    def writer(env):
        yield from array.write(0, 10_000_000)
        return env.now

    proc = env.process(writer(env))
    elapsed = env.run(until=proc)
    assert array.bytes_written == 10_000_000
    # 10 MB at 100 MB/s aggregate ~ 0.1 s + positioning.
    assert elapsed < seconds(0.2)


def test_write_size_validation():
    env = Environment()
    disk = Disk(env, "d0")
    with pytest.raises(ValueError):
        list(disk.write(0, 0))
    array = DiskArray(env)
    with pytest.raises(ValueError):
        list(array.write(0, -1))


def test_storage_node_serve_write_counts_traffic():
    system = System(ClusterConfig())
    storage = system.storage

    def writer(env):
        yield from storage.serve_write(0, 65536)

    system.env.process(writer(system.env))
    system.env.run()
    assert storage.tca.traffic.bytes_in == 65536
    assert storage.disks.bytes_written == 65536
    assert storage.scsi.stats.transactions == 1

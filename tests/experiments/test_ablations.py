"""Fast unit tests for the ablation experiments (small parameters)."""

import pytest

from repro.experiments.ablations import (
    ablate_buffer_count,
    ablate_clock_ratio,
    ablate_cut_through,
    ablate_filter_placement,
    ablate_noninterference,
    ablate_prefetch_depth,
    measure_forwarding_latency,
)


def test_cut_through_beats_store_and_forward():
    times = ablate_cut_through(scale=0.25)
    assert times["cut-through"] < times["store-and-forward"]
    assert times["overlap benefit"] > 1.0


def test_buffer_count_more_never_hurts():
    rows = ablate_buffer_count(counts=(2, 16))
    by_count = {row["buffers"]: row["latency_us"] for row in rows}
    assert by_count[16] <= by_count[2] * 1.01


def test_clock_ratio_monotone():
    rows = ablate_clock_ratio(scale=0.25, freqs=(500e6, 2e9))
    speedups = [row["speedup"] for row in rows]
    assert speedups[0] < speedups[1]


def test_prefetch_depth_two_is_enough():
    rows = ablate_prefetch_depth(scale=1 / 128, depths=(1, 2, 4))
    by_depth = {row["depth"]: row["exec_ms"] for row in rows}
    assert by_depth[2] < by_depth[1]
    assert by_depth[4] == pytest.approx(by_depth[2], rel=0.02)


def test_noninterference_slowdown_is_unity():
    result = ablate_noninterference(probes=5)
    assert result["slowdown"] == pytest.approx(1.0, abs=0.05)


def test_forwarding_latency_is_submicrosecond():
    latency = measure_forwarding_latency(active_load=False, probes=3)
    assert latency < 2.0  # us


def test_filter_placement_single_cpu_has_headroom():
    result = ablate_filter_placement(scale=1 / 256, num_streams=2)
    assert result["switch_cpu_busy_frac"] < 0.5
    assert result["streams"] == 2.0

"""Tests for the experiment registry and the per-figure definitions."""

import pytest

import repro.experiments as experiments
from repro.experiments import all_experiments, compare, get
from repro.experiments.registry import Experiment, register


EXPECTED_IDS = {
    "table1",
    "table2",
    "fig03_04_mpeg",
    "fig05_06_hashjoin",
    "fig07_08_select",
    "fig09_10_grep",
    "fig11_12_tar",
    "fig13_14_sort",
    "fig15_reduce_to_one",
    "fig16_distributed_reduce",
    "fig17_md5_multicpu",
    "ext_two_level",
    "ext_multiprogramming",
    "ext_fabric_scale",
    "ext_fabric_availability",
    "ext_service_slo",
}


def test_every_paper_artifact_is_registered():
    assert {e.experiment_id for e in all_experiments()} == EXPECTED_IDS


def test_get_unknown_raises():
    with pytest.raises(KeyError):
        get("fig99")


def test_duplicate_registration_rejected():
    exp = get("table1")
    with pytest.raises(ValueError):
        register(Experiment(
            experiment_id="table1", title="dup", paper={}, run=lambda s: None,
            measured=lambda r: {}))


def test_table1_lists_paper_sizes():
    rows = get("table1").run()
    names = [row[0] for row in rows]
    assert "MPEG filter" in names
    assert "Collective Reduction" in names
    sizes = dict(rows)
    assert sizes["Grep"] == 1_146_880
    assert sizes["MPEG filter"] == 2_202_640
    assert sizes["MD5"] == 256 * 1024


def test_compare_aligns_measured_with_paper():
    exp = get("table1")
    rows = compare(exp, exp.run())
    metrics = {row[0]: row for row in rows}
    assert metrics["applications"][1] == 8
    assert metrics["applications"][2] == 8


def test_grep_experiment_end_to_end():
    exp = get("fig09_10_grep")
    result = exp.run(scale=0.25)
    rows = compare(exp, result)
    by_metric = {r[0]: r for r in rows}
    measured_speedup = by_metric["active speedup (vs normal)"][1]
    assert 1.0 < measured_speedup < 1.6
    assert by_metric["host util active"][1] < 0.05


def test_table2_verifies_both_modes():
    exp = get("table2")
    result = exp.run()
    assert exp.measured(result)["modes verified"] == 2.0


def test_experiments_have_paper_expectations():
    for exp in all_experiments():
        assert exp.paper, f"{exp.experiment_id} has no paper values"
        assert exp.title


def test_main_module_runs_single_experiment(capsys):
    from repro.experiments.__main__ import main
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "paper vs measured" in out


def test_main_json_output(tmp_path, capsys):
    import json
    from repro.experiments.__main__ import main
    out_path = tmp_path / "results.json"
    assert main(["table1", "--json", str(out_path)]) == 0
    capsys.readouterr()
    data = json.loads(out_path.read_text())
    assert data["table1"]["measured"]["applications"] == 8
    assert data["table1"]["paper"]["applications"] == 8


def test_main_ablations_flag(capsys):
    from repro.experiments.__main__ import main
    assert main(["--ablations"]) == 0
    out = capsys.readouterr().out
    assert "Ablation studies" in out
    assert "non-interference" in out


def test_markdown_report_generator(tmp_path):
    from repro.experiments.report_generator import write_report
    out = tmp_path / "report.md"
    write_report(str(out), experiment_ids=["table1", "fig09_10_grep"],
                 scale=0.25)
    text = out.read_text()
    assert "# Generated results report" in text
    assert "Grep" in text
    assert "paper vs measured" in text
    assert "####" in text  # bar charts present


def test_main_markdown_flag(tmp_path, capsys):
    from repro.experiments.__main__ import main
    out = tmp_path / "report.md"
    assert main(["table1", "--markdown", str(out)]) == 0
    assert out.exists()

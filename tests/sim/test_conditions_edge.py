"""Edge cases for condition events and kernel error paths."""

import pytest

from repro.sim import Environment, SimulationError


def test_all_of_fails_fast_on_member_failure():
    env = Environment()
    gate = env.event()

    def failer(env):
        yield env.timeout(10)
        gate.fail(RuntimeError("member died"))

    def waiter(env):
        try:
            yield env.all_of([gate, env.timeout(1000)])
        except RuntimeError:
            return env.now

    env.process(failer(env))
    proc = env.process(waiter(env))
    # Fails at t=10, long before the 1000-ps member completes.
    assert env.run(until=proc) == 10


def test_any_of_propagates_failure():
    env = Environment()
    gate = env.event()

    def failer(env):
        yield env.timeout(5)
        gate.fail(ValueError("boom"))

    def waiter(env):
        try:
            yield env.any_of([gate, env.timeout(1000)])
        except ValueError:
            return "failed"

    env.process(failer(env))
    proc = env.process(waiter(env))
    assert env.run(until=proc) == "failed"


def test_all_of_with_already_processed_members():
    env = Environment()
    done = env.event()
    done.succeed("early")

    def waiter(env):
        yield env.timeout(50)  # let `done` process
        results = yield env.all_of([done, env.timeout(10, "late")])
        return sorted(str(v) for v in results.values())

    proc = env.process(waiter(env))
    assert env.run(until=proc) == ["early", "late"]


def test_condition_rejects_foreign_environment():
    env_a = Environment()
    env_b = Environment()
    foreign = env_b.event()
    with pytest.raises(SimulationError):
        env_a.all_of([env_a.event(), foreign])


def test_nested_conditions():
    env = Environment()

    def waiter(env):
        inner = env.all_of([env.timeout(10), env.timeout(20)])
        yield env.any_of([inner, env.timeout(100)])
        return env.now

    proc = env.process(waiter(env))
    assert env.run(until=proc) == 20


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_event_value_before_trigger_raises():
    env = Environment()
    pending = env.event()
    with pytest.raises(SimulationError):
        _ = pending.value
    with pytest.raises(SimulationError):
        _ = pending.ok


def test_schedule_in_past_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.schedule(env.event(), delay=-5)


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_any_of_empty_fires_immediately():
    env = Environment()

    def waiter(env):
        yield env.any_of([])
        return env.now

    proc = env.process(waiter(env))
    assert env.run(until=proc) == 0

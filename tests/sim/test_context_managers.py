"""Context-manager semantics of the blocking primitives."""

import pytest

from repro.sim import (
    Container,
    Environment,
    Interrupt,
    Resource,
    SimulationError,
    Store,
)


# ----------------------------------------------------------------------
# Resource.request() as a context manager
# ----------------------------------------------------------------------
def test_with_request_releases_on_normal_exit():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(env, tag):
        with res.request() as req:
            yield req
            order.append((tag, "in", env.now))
            yield env.timeout(10)
        order.append((tag, "out", env.now))

    env.process(worker(env, "a"))
    env.process(worker(env, "b"))
    env.run()
    assert res.count == 0 and len(res.queue) == 0
    # b entered only after a's with-block released the unit.
    assert ("a", "in", 0) in order
    assert ("b", "in", 10) in order


def test_with_request_releases_on_exception():
    env = Environment()
    res = Resource(env, capacity=1)

    def failing(env):
        with res.request() as req:
            yield req
            raise RuntimeError("boom")

    def patient(env):
        yield env.timeout(1)
        with res.request() as req:
            yield req

    proc = env.process(failing(env))
    env.process(patient(env), name="patient")
    with pytest.raises(RuntimeError):
        env.run()
    # The failing holder released on the way out; nothing leaked.
    assert res.count == 0
    assert not proc.ok


def test_with_request_withdraws_a_queued_wait_on_interrupt():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(100)

    def impatient(env):
        try:
            with res.request() as req:
                yield req
        except Interrupt:
            pass
        yield env.timeout(1)

    env.process(holder(env))
    victim = env.process(impatient(env))

    def interrupter(env):
        yield env.timeout(10)
        victim.interrupt("give up")

    env.process(interrupter(env))
    env.run()
    # The queued request was withdrawn; the holder finished and
    # released; capacity is conserved.
    assert res.count == 0 and len(res.queue) == 0


def test_explicit_release_form_still_works():
    env = Environment()
    res = Resource(env, capacity=1)

    def worker(env):
        req = res.request()
        yield req
        try:
            yield env.timeout(5)
        finally:
            res.release(req)

    env.process(worker(env))
    env.run()
    assert res.count == 0


def test_release_of_never_granted_request_still_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    granted = res.request()
    assert granted.triggered
    queued = res.request()
    with pytest.raises(SimulationError):
        res.release(queued)


# ----------------------------------------------------------------------
# Store / Container waits as context managers
# ----------------------------------------------------------------------
def test_store_get_with_block_withdraws_on_exception():
    env = Environment()
    store = Store(env, name="box")

    def consumer(env):
        with store.get() as getter:
            try:
                yield getter
            except Interrupt:
                pass
        yield env.timeout(1)

    victim = env.process(consumer(env))

    def interrupter(env):
        yield env.timeout(5)
        victim.interrupt()

    env.process(interrupter(env))
    env.run()
    assert len(store._getters) == 0  # no zombie waiter left behind
    store.put("late")
    assert list(store.items) == ["late"]  # nobody stole it


def test_container_get_with_block_is_clean_on_success():
    env = Environment()
    pool = Container(env, capacity=10, init=4)
    taken = []

    def worker(env):
        with pool.get(3) as getter:
            yield getter
            taken.append(pool.level)

    env.process(worker(env))
    env.run()
    assert taken == [1]
    assert pool.level == 1  # consumed normally: no rollback


def test_store_put_with_block_withdraws_blocked_put():
    env = Environment()
    store = Store(env, capacity=1)
    store.put("occupant")

    def producer(env):
        with store.put("extra") as putter:
            try:
                yield putter
            except Interrupt:
                pass

    victim = env.process(producer(env))

    def interrupter(env):
        yield env.timeout(5)
        victim.interrupt()

    env.process(interrupter(env))
    env.run()
    assert len(store._putters) == 0
    assert list(store.items) == ["occupant"]

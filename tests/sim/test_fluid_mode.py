"""Fluid-mode (``REPRO_SIM_FLUID=1``) accuracy and safety regression.

Fluid mode fast-forwards steady-state stream phases by sampling the
per-block cache-stall evaluation instead of driving the memory
hierarchy for every block (see :class:`repro.apps.base._StallSampler`
and docs/scaling.md).  It is opt-in and approximate, so three things
are pinned here:

* the error envelope — execution time within 0.1 % of exact (measured
  worst case is ~0.02 %, see docs/scaling.md for the full table);
* the work reduction — the hierarchy sees at least 2x fewer references
  (the deterministic proxy for its wall-clock speedup);
* the safety rails — off by default, results stamped with a
  ``fluid_mode`` provenance marker, and a distinct cache fingerprint so
  approximate results can never be restored as exact ones.
"""

import pytest

from repro.runner.harness import Cell, cell_config, cell_key
from repro.runner.spec import make_spec

#: Pinned envelope: |exec_fluid - exec_exact| / exec_exact per case.
MAX_REL_ERROR = 1e-3

#: Pinned work reduction on cache-heavy normal cases.
MIN_ACCESS_REDUCTION = 2.0


def _run(app_name, scale, case, fluid, monkeypatch):
    monkeypatch.delenv("REPRO_SIM_PERBLOCK", raising=False)
    if fluid:
        monkeypatch.setenv("REPRO_SIM_FLUID", "1")
    else:
        monkeypatch.delenv("REPRO_SIM_FLUID", raising=False)
    spec = make_spec(app_name, scale=scale)
    app = spec.build()
    config = cell_config(Cell(spec=spec, case=case, seed=0), app)
    sink = {}
    result = app.run_case(config, metrics_sink=sink)
    return result, sink


def _hierarchy_accesses(sink):
    return sum(v for k, v in sink.items()
               if k.startswith("mem.") and k.endswith(".accesses"))


@pytest.mark.parametrize("app_name,scale,case", [
    ("select", 0.25, "normal"),
    ("select", 0.25, "normal+pref"),
    ("mpeg", 1.0, "normal"),
    ("mpeg", 1.0, "active"),
])
def test_fluid_error_within_envelope(app_name, scale, case, monkeypatch):
    exact, sink_e = _run(app_name, scale, case, False, monkeypatch)
    fluid, sink_f = _run(app_name, scale, case, True, monkeypatch)
    err = abs(fluid.exec_ps - exact.exec_ps) / exact.exec_ps
    assert err <= MAX_REL_ERROR, (
        f"{app_name}/{case}: fluid error {err:.2e} exceeds pinned "
        f"envelope {MAX_REL_ERROR:.0e}")
    # Busy cycles are never approximated — only stall sampling drifts.
    assert fluid.host.busy_ps == exact.host.busy_ps
    # Traffic is workload-determined, identical in both modes.
    assert fluid.host_bytes_in == exact.host_bytes_in
    assert fluid.host_bytes_out == exact.host_bytes_out


def test_fluid_reduces_hierarchy_work(monkeypatch):
    _, sink_e = _run("select", 0.25, "normal", False, monkeypatch)
    _, sink_f = _run("select", 0.25, "normal", True, monkeypatch)
    reduction = _hierarchy_accesses(sink_e) / max(
        _hierarchy_accesses(sink_f), 1)
    assert reduction >= MIN_ACCESS_REDUCTION, (
        f"fluid mode only cut hierarchy references by {reduction:.2f}x")


def test_fluid_is_opt_in_and_stamped(monkeypatch):
    exact, _ = _run("grep", 0.05, "normal", False, monkeypatch)
    assert "fluid_mode" not in exact.extra
    fluid, _ = _run("grep", 0.05, "normal", True, monkeypatch)
    assert fluid.extra.get("fluid_mode") == 1.0


def test_fluid_mode_changes_cache_fingerprint(monkeypatch):
    """Exact and fluid results must never share a cache entry."""
    spec = make_spec("grep", scale=0.05)
    cell = Cell(spec=spec, case="normal", seed=0)
    monkeypatch.delenv("REPRO_SIM_FLUID", raising=False)
    key_exact = cell_key(cell)
    monkeypatch.setenv("REPRO_SIM_FLUID", "1")
    key_fluid = cell_key(cell)
    assert key_exact != key_fluid


def test_fluid_mode_tag(monkeypatch):
    from repro.sim.burst import sim_mode_tag

    monkeypatch.delenv("REPRO_SIM_FLUID", raising=False)
    assert sim_mode_tag() == "exact"
    monkeypatch.setenv("REPRO_SIM_FLUID", "1")
    assert sim_mode_tag() == "fluid"

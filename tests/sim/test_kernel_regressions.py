"""Regression tests for the kernel bugs fixed in the hardening pass.

Each test here fails on the pre-fix kernel:

1. ``Resource.cancel()`` raised / leaked on a request granted in the
   same timestep (cancel-after-grant race).
2. ``Process.interrupt()`` left the dead waiter's Request in
   ``Resource.queue``, so a later grant went to a process that would
   never release it.
3. ``Container.put(amount > capacity)`` was accepted and deadlocked the
   putter forever instead of failing fast.
4. ``TimeWeighted.mean(until_ps)`` with ``until_ps`` before the last
   change computed a negative-width open segment and corrupted the mean.
5. ``Tracer.summary()`` did not report dropped records (covered in
   tests/sim/test_trace.py as well; the drop-policy assert lives here).
"""

import pytest

from repro.metrics.sampling import TimeWeighted
from repro.sim import (
    Container,
    Environment,
    Interrupt,
    Resource,
    Tracer,
)


# ----------------------------------------------------------------------
# 1. cancel-after-grant race
# ----------------------------------------------------------------------
def test_cancel_after_grant_releases_the_unit():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    assert req.triggered  # granted immediately
    res.cancel(req)  # old kernel: SimulationError / leaked unit
    assert res.count == 0

    # The released unit is immediately grantable to someone else.
    again = res.request()
    assert again.triggered


def test_cancel_after_grant_hands_the_unit_to_the_next_waiter():
    env = Environment()
    res = Resource(env, capacity=1)
    first = res.request()
    second = res.request()
    assert first.triggered and not second.triggered
    res.cancel(first)
    assert second.triggered  # promoted, not starved


def test_cancel_is_idempotent():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    res.cancel(req)
    res.cancel(req)  # with-block exit after an explicit cancel: no-op
    assert res.count == 0


def test_interrupt_races_with_grant_in_same_timestep():
    """The full race: the grant and the interrupt land at the same
    simulated instant; the interrupted process never sees the grant, so
    the kernel must roll it back."""
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def waiter(env):
        try:
            with res.request() as req:
                yield req
                pytest.fail("waiter should have been interrupted")
        except Interrupt:
            yield env.timeout(1)

    env.process(holder(env))
    victim = env.process(waiter(env), name="victim")

    def interrupter(env):
        # t=10: the holder releases AND we interrupt — same timestep.
        # Interrupts are urgent, so the victim sees the Interrupt while
        # its freshly-granted request sits unconsumed.
        yield env.timeout(10)
        victim.interrupt()

    env.process(interrupter(env))
    env.run()
    assert res.count == 0 and len(res.queue) == 0


# ----------------------------------------------------------------------
# 2. interrupt leaves the waiter queued
# ----------------------------------------------------------------------
def test_interrupt_withdraws_queued_request_capacity_conserved():
    env = Environment()
    res = Resource(env, capacity=1)
    entered = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(100)

    def doomed(env):
        req = res.request()
        try:
            yield req
            pytest.fail("doomed should never be granted")
        except Interrupt:
            return  # walks away WITHOUT cancelling explicitly

    def third(env):
        yield env.timeout(1)
        with res.request() as req:
            yield req
            entered.append(env.now)

    env.process(holder(env))
    victim = env.process(doomed(env), name="doomed")
    env.process(third(env), name="third")

    def interrupter(env):
        yield env.timeout(10)
        victim.interrupt()

    env.process(interrupter(env))
    env.run()
    # Old kernel: the grant at t=100 went to the dead 'doomed' waiter
    # and 'third' starved forever.  Now 'doomed' left the queue.
    assert entered == [100]
    assert res.count == 0 and len(res.queue) == 0


# ----------------------------------------------------------------------
# 3. Container.put over capacity
# ----------------------------------------------------------------------
def test_container_put_over_capacity_raises():
    env = Environment()
    pool = Container(env, capacity=8, init=0)
    with pytest.raises(ValueError):
        pool.put(9)
    assert pool.level == 0
    assert len(pool._putters) == 0  # nothing enqueued by the failure


def test_container_put_at_exact_capacity_is_fine():
    env = Environment()
    pool = Container(env, capacity=8, init=0)
    event = pool.put(8)
    assert event.triggered
    assert pool.level == 8


# ----------------------------------------------------------------------
# 4. TimeWeighted.mean(until_ps) before the last change
# ----------------------------------------------------------------------
def test_time_weighted_mean_rejects_until_before_last_change():
    env = Environment()
    series = TimeWeighted(env, initial=10)

    def advance(env):
        yield env.timeout(100)
        series.set(20)

    env.process(advance(env))
    env.run()
    # Old kernel: integrated a negative-width open segment and returned
    # a silently wrong mean.  Now it refuses.
    with pytest.raises(ValueError):
        series.mean(until_ps=50)  # predates the change at t=100


def test_time_weighted_mean_still_extrapolates_forward():
    env = Environment()
    series = TimeWeighted(env, initial=10)

    def advance(env):
        yield env.timeout(100)
        series.set(30)

    env.process(advance(env))
    env.run()
    # 10 for [0,100) then 30 for [100,200): mean 20.
    assert series.mean(until_ps=200) == pytest.approx(20.0)


# ----------------------------------------------------------------------
# 5. Tracer drop policy
# ----------------------------------------------------------------------
@pytest.mark.filterwarnings(
    "ignore:repro.sim.Tracer is deprecated:DeprecationWarning")
def test_tracer_drops_newest_and_counts_them():
    tracer = Tracer(capacity=2)
    tracer.record(0, "first")
    tracer.record(1, "second")
    tracer.record(2, "third")  # newest: dropped, not evicting history
    kinds = [r.kind for r in tracer.records]
    assert kinds == ["first", "second"]
    assert tracer.dropped == 1
    assert tracer.summary()["dropped"] == 1

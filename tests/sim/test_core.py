"""Unit tests for the discrete-event kernel: environment and events."""

import pytest

from repro.sim import Environment, Event, SimulationError, StopProcess


def test_initial_time_is_zero():
    assert Environment().now == 0


def test_initial_time_can_be_set():
    assert Environment(initial_time=42).now == 42


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(1500)
    env.run()
    assert env.now == 1500


def test_run_until_time_stops_exactly():
    env = Environment()
    env.timeout(100)
    env.timeout(300)
    env.run(until=200)
    assert env.now == 200


def test_run_until_past_raises():
    env = Environment(initial_time=50)
    with pytest.raises(SimulationError):
        env.run(until=10)


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_process_returns_value():
    env = Environment()

    def worker(env):
        yield env.timeout(10)
        return "done"

    proc = env.process(worker(env))
    result = env.run(until=proc)
    assert result == "done"
    assert env.now == 10


def test_process_sequential_timeouts_accumulate():
    env = Environment()
    trace = []

    def worker(env):
        for delay in (5, 10, 15):
            yield env.timeout(delay)
            trace.append(env.now)

    env.process(worker(env))
    env.run()
    assert trace == [5, 15, 30]


def test_timeout_carries_value():
    env = Environment()

    def worker(env):
        got = yield env.timeout(3, value="payload")
        return got

    proc = env.process(worker(env))
    assert env.run(until=proc) == "payload"


def test_two_processes_interleave():
    env = Environment()
    trace = []

    def ticker(env, name, period):
        for _ in range(3):
            yield env.timeout(period)
            trace.append((env.now, name))

    env.process(ticker(env, "a", 10))
    env.process(ticker(env, "b", 15))
    env.run()
    # At t=30 both fire; b's timeout was scheduled earlier (at t=15) so it
    # is processed first.
    assert trace == [(10, "a"), (15, "b"), (20, "a"), (30, "b"), (30, "a"), (45, "b")]


def test_event_succeed_delivers_value():
    env = Environment()
    gate = env.event()

    def opener(env):
        yield env.timeout(7)
        gate.succeed("open")

    def waiter(env):
        value = yield gate
        return (env.now, value)

    env.process(opener(env))
    proc = env.process(waiter(env))
    assert env.run(until=proc) == (7, "open")


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()

    def failer(env):
        yield env.timeout(1)
        gate.fail(RuntimeError("boom"))

    def waiter(env):
        try:
            yield gate
        except RuntimeError as exc:
            return str(exc)

    env.process(failer(env))
    proc = env.process(waiter(env))
    assert env.run(until=proc) == "boom"


def test_event_cannot_trigger_twice():
    env = Environment()
    gate = env.event()
    gate.succeed()
    with pytest.raises(SimulationError):
        gate.succeed()


def test_unhandled_process_exception_propagates():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("broken")

    env.process(bad(env))
    with pytest.raises(ValueError, match="broken"):
        env.run()


def test_watched_process_exception_is_caught_by_waiter():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("broken")

    def watcher(env, target):
        try:
            yield target
        except ValueError:
            return "caught"

    target = env.process(bad(env))
    proc = env.process(watcher(env, target))
    assert env.run(until=proc) == "caught"


def test_yield_non_event_raises():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_stop_process_sets_value():
    env = Environment()

    def quitter(env):
        yield env.timeout(5)
        raise StopProcess("early")

    proc = env.process(quitter(env))
    assert env.run(until=proc) == "early"


def test_yield_already_processed_event_continues_immediately():
    env = Environment()
    done = env.event()
    done.succeed("cached")

    def late(env):
        yield env.timeout(10)
        value = yield done
        return (env.now, value)

    proc = env.process(late(env))
    assert env.run(until=proc) == (10, "cached")


def test_run_until_event_that_never_fires_raises():
    env = Environment()
    never = env.event()
    env.timeout(5)
    with pytest.raises(SimulationError):
        env.run(until=never)


def test_all_of_waits_for_every_event():
    env = Environment()

    def worker(env):
        results = yield env.all_of([env.timeout(10, "a"), env.timeout(30, "b")])
        return (env.now, sorted(results.values()))

    proc = env.process(worker(env))
    assert env.run(until=proc) == (30, ["a", "b"])


def test_any_of_fires_on_first():
    env = Environment()

    def worker(env):
        results = yield env.any_of([env.timeout(10, "fast"), env.timeout(30, "slow")])
        return (env.now, list(results.values()))

    proc = env.process(worker(env))
    assert env.run(until=proc) == (10, ["fast"])


def test_all_of_empty_fires_immediately():
    env = Environment()

    def worker(env):
        yield env.all_of([])
        return env.now

    proc = env.process(worker(env))
    assert env.run(until=proc) == 0


def test_nested_process_wait():
    env = Environment()

    def child(env):
        yield env.timeout(20)
        return "child-done"

    def parent(env):
        value = yield env.process(child(env))
        return (env.now, value)

    proc = env.process(parent(env))
    assert env.run(until=proc) == (20, "child-done")


def test_event_ordering_is_fifo_at_same_timestamp():
    env = Environment()
    order = []

    def maker(env, tag):
        yield env.timeout(10)
        order.append(tag)

    for tag in range(5):
        env.process(maker(env, tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(99)
    assert env.peek() == 99


def test_peek_empty_queue_is_infinity():
    env = Environment()
    assert env.peek() == float("inf")


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(SimulationError):
        env.process(lambda: None)


def test_active_process_visible_during_execution():
    env = Environment()
    seen = []

    def worker(env):
        seen.append(env.active_process)
        yield env.timeout(1)

    proc = env.process(worker(env))
    env.run()
    assert seen == [proc]
    assert env.active_process is None

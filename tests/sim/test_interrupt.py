"""Unit tests for process interruption."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


def test_interrupt_raises_in_target():
    env = Environment()
    caught = []

    def sleeper(env):
        try:
            yield env.timeout(1000)
        except Interrupt as exc:
            caught.append((env.now, exc.cause))

    def interrupter(env, target):
        yield env.timeout(100)
        target.interrupt(cause="wake up")

    target = env.process(sleeper(env))
    env.process(interrupter(env, target))
    env.run()
    assert caught == [(100, "wake up")]


def test_interrupted_process_can_rewait():
    """After handling the interrupt, the original event still fires."""
    env = Environment()
    log = []

    def sleeper(env):
        wait = env.timeout(1000)
        try:
            yield wait
        except Interrupt:
            log.append(("interrupted", env.now))
        yield wait  # resume waiting on the same event
        log.append(("done", env.now))

    def interrupter(env, target):
        yield env.timeout(300)
        target.interrupt()

    target = env.process(sleeper(env))
    env.process(interrupter(env, target))
    env.run()
    assert log == [("interrupted", 300), ("done", 1000)]


def test_unhandled_interrupt_kills_process():
    env = Environment()

    def sleeper(env):
        yield env.timeout(1000)

    def interrupter(env, target):
        yield env.timeout(10)
        target.interrupt()

    target = env.process(sleeper(env))
    env.process(interrupter(env, target))
    with pytest.raises(Interrupt):
        env.run()


def test_watcher_sees_interrupt_failure():
    env = Environment()

    def sleeper(env):
        yield env.timeout(1000)

    def interrupter(env, target):
        yield env.timeout(10)
        target.interrupt()

    def watcher(env, target):
        try:
            yield target
        except Interrupt:
            return "observed"

    target = env.process(sleeper(env))
    env.process(interrupter(env, target))
    proc = env.process(watcher(env, target))
    assert env.run(until=proc) == "observed"


def test_cannot_interrupt_finished_process():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    target = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        target.interrupt()


def test_cannot_interrupt_self():
    env = Environment()
    errors = []

    def selfish(env):
        try:
            env.active_process.interrupt()
        except SimulationError as exc:
            errors.append(str(exc))
        yield env.timeout(1)

    env.process(selfish(env))
    env.run()
    assert errors


def test_interrupt_as_io_timeout_watchdog():
    """The classic pattern: cancel a slow operation after a deadline."""
    env = Environment()
    outcome = []

    def slow_io(env):
        try:
            yield env.timeout(10_000)
            outcome.append("completed")
        except Interrupt:
            outcome.append("cancelled")

    def watchdog(env, target, deadline):
        yield env.timeout(deadline)
        if target.is_alive:
            target.interrupt(cause="deadline")

    io = env.process(slow_io(env))
    env.process(watchdog(env, io, 500))
    env.run()
    assert outcome == ["cancelled"]
    assert env.now == 10_000  # the abandoned timeout still drains

"""Unit tests for time/size units and the Clock helper."""

import pytest

from repro.sim import Clock, cycles_to_ps, ms, ns, seconds, transfer_ps, us
from repro.sim.units import ps_to_ms, ps_to_ns, ps_to_seconds, ps_to_us


def test_ns_us_ms_seconds_scale():
    assert ns(1) == 1_000
    assert us(1) == 1_000_000
    assert ms(1) == 1_000_000_000
    assert seconds(1) == 1_000_000_000_000


def test_fractional_conversion_rounds():
    assert us(0.27) == 270_000
    assert ns(0.5) == 500


def test_roundtrip_conversions():
    assert ps_to_ns(ns(123.0)) == pytest.approx(123.0)
    assert ps_to_us(us(30)) == pytest.approx(30.0)
    assert ps_to_ms(ms(2)) == pytest.approx(2.0)
    assert ps_to_seconds(seconds(1.5)) == pytest.approx(1.5)


def test_host_clock_period():
    assert Clock(2_000_000_000).period_ps == 500


def test_switch_clock_period():
    assert Clock(500_000_000).period_ps == 2000


def test_clock_cycles():
    clock = Clock(2_000_000_000)
    assert clock.cycles(10) == 5_000
    assert clock.ps_to_cycles(5_000) == pytest.approx(10.0)


def test_clock_rejects_nonpositive_frequency():
    with pytest.raises(ValueError):
        Clock(0)


def test_cycles_to_ps_matches_clock():
    assert cycles_to_ps(100, 500_000_000) == Clock(500_000_000).cycles(100)


def test_transfer_ps_basic():
    # 1 GB/s moving 1024 bytes -> 1024 ns
    one_gbps = 1_000_000_000
    assert transfer_ps(1000, one_gbps) == us(1)


def test_transfer_ps_zero_bytes():
    assert transfer_ps(0, 1e9) == 0


def test_transfer_ps_minimum_one_ps():
    assert transfer_ps(1, 1e30) == 1

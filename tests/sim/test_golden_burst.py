"""Golden-stats equivalence: burst vs per-block transport/dispatch path.

The burst engine (:mod:`repro.sim.burst`) claims bit-identity with the
per-block reference path (``REPRO_SIM_PERBLOCK=1``): one event per
stream burst for disk service, link occupancy, and handler dispatch,
with the interior pipeline computed analytically.  These tests prove it
the strong way: every paper application, all four configurations, run
once per path, comparing the full :class:`CaseResult` and the full
metrics snapshot for exact equality.  ``sim.event_count`` is the one
excluded key — shrinking it is the feature — and is separately
asserted to shrink.  A fault-free chaos-preset cell checks the same
through the recovery-capable configuration; a faulted cell checks the
automatic fallback to the reference path.
"""

from dataclasses import replace

import pytest

from repro.cluster.config import case_configs
from repro.cluster.presets import chaos_2003
from repro.faults.plan import FaultPlan
from repro.runner.harness import CASE_LABELS, Cell, cell_config
from repro.runner.spec import paper_grid

#: Same scale factor as the memory-path golden grid: enough work to
#: exercise prefetch overlap, pool contention, and multi-node transfers
#: while keeping the double grid fast.
SCALE_FACTOR = 0.05

_GRID = {spec.label: spec for spec in paper_grid(scale=SCALE_FACTOR)}


def _run_case(app, config, perblock, monkeypatch):
    """One simulation; returns (CaseResult, metrics snapshot)."""
    if perblock:
        monkeypatch.setenv("REPRO_SIM_PERBLOCK", "1")
    else:
        monkeypatch.delenv("REPRO_SIM_PERBLOCK", raising=False)
    monkeypatch.delenv("REPRO_SIM_FLUID", raising=False)
    sink = {}
    result = app.run_case(config, metrics_sink=sink)
    return result, sink


def _assert_identical(label, burst, perblock, expect_fewer_events=True):
    result_b, sink_b = burst
    result_p, sink_p = perblock
    diff = {k: (sink_p.get(k), sink_b.get(k))
            for k in set(sink_p) | set(sink_b)
            if k != "sim.event_count" and sink_p.get(k) != sink_b.get(k)}
    assert diff == {}, f"{label}: counters diverge: {diff}"
    assert result_b == result_p, f"{label}: CaseResult diverges"
    if expect_fewer_events:
        assert sink_b["sim.event_count"] < sink_p["sim.event_count"], (
            f"{label}: burst path scheduled no fewer events "
            f"({sink_b['sim.event_count']:.0f} vs "
            f"{sink_p['sim.event_count']:.0f})")


@pytest.mark.parametrize("label", sorted(_GRID))
def test_burst_path_is_bit_identical(label, monkeypatch):
    spec = _GRID[label]
    app = spec.build()
    for case in CASE_LABELS:
        config = cell_config(Cell(spec=spec, case=case, seed=None), app)
        burst = _run_case(app, config, False, monkeypatch)
        perblock = _run_case(app, config, True, monkeypatch)
        _assert_identical(f"{label}/{case}", burst, perblock)


def test_chaos_preset_fault_free_is_bit_identical(monkeypatch):
    """Same equivalence through the chaos preset (faults zeroed)."""
    from repro.apps.grep import GrepApp

    app = GrepApp(scale=SCALE_FACTOR)
    base = app.cluster_config()
    config = replace(
        chaos_2003(seed=0, faults=FaultPlan()),
        num_hosts=base.num_hosts,
        num_storage=base.num_storage,
        num_switch_cpus=base.num_switch_cpus,
        database_scaled_caches=base.database_scaled_caches,
        cache_scale_divisor=base.cache_scale_divisor,
    )
    for label, case_config in case_configs(config):
        burst = _run_case(app, case_config, False, monkeypatch)
        perblock = _run_case(app, case_config, True, monkeypatch)
        _assert_identical(f"chaos/{label}", burst, perblock)


def test_faulted_run_falls_back_to_per_block_path(monkeypatch):
    """With an injector attached the burst gate opens: both flag
    settings run the event-driven reference path (faults need the real
    retry loops), so even the event counts agree."""
    from repro.apps.grep import GrepApp

    app = GrepApp(scale=SCALE_FACTOR)
    base = app.cluster_config()
    config = replace(
        chaos_2003(seed=0),
        num_hosts=base.num_hosts,
        num_storage=base.num_storage,
        num_switch_cpus=base.num_switch_cpus,
        database_scaled_caches=base.database_scaled_caches,
        cache_scale_divisor=base.cache_scale_divisor,
    ).with_case(active=True, prefetch=True)
    burst = _run_case(app, config, False, monkeypatch)
    perblock = _run_case(app, config, True, monkeypatch)
    _assert_identical("chaos-faulted", burst, perblock,
                      expect_fewer_events=False)
    assert (burst[1]["sim.event_count"]
            == perblock[1]["sim.event_count"])


def test_service_layer_is_bit_identical(monkeypatch):
    """Open-loop serving through the burst worker fast path."""
    from repro.traffic.service import ServiceSpec, _simulate

    for spec in (
        ServiceSpec(app="grep", case="normal", topology="single"),
        ServiceSpec(app="grep", case="active", topology="fat_tree",
                    hosts=16),
    ):
        monkeypatch.delenv("REPRO_SIM_PERBLOCK", raising=False)
        monkeypatch.delenv("REPRO_SIM_FLUID", raising=False)
        result_b = _simulate(spec)
        monkeypatch.setenv("REPRO_SIM_PERBLOCK", "1")
        result_p = _simulate(spec)
        assert result_b == result_p, f"{spec.label}: results diverge"


def test_perblock_flag_controls_path(monkeypatch):
    """The debug flag actually selects the per-block reference path."""
    from repro.apps.grep import GrepApp
    from repro.cluster.system import System

    app = GrepApp(scale=SCALE_FACTOR)
    monkeypatch.delenv("REPRO_SIM_PERBLOCK", raising=False)
    assert System(app.cluster_config()).burst_ok()
    monkeypatch.setenv("REPRO_SIM_PERBLOCK", "1")
    assert not System(app.cluster_config()).burst_ok()

"""Tests for the deadlock detector, watchdog, and failure context."""

import pytest

from repro.sim import (
    DeadlockError,
    Environment,
    Resource,
    SimulationError,
    Store,
    WatchdogError,
)


# ----------------------------------------------------------------------
# Deadlock detection
# ----------------------------------------------------------------------
def test_two_process_lock_inversion_raises_deadlock_error():
    """The acceptance-criteria scenario: a deliberately-deadlocked pair
    raises DeadlockError naming both processes and their primitives."""
    env = Environment()
    lock_a = Resource(env, name="lock-a")
    lock_b = Resource(env, name="lock-b")

    def worker(env, first, second):
        with first.request() as one:
            yield one
            yield env.timeout(10)
            with second.request() as two:
                yield two

    env.process(worker(env, lock_a, lock_b), name="alice")
    env.process(worker(env, lock_b, lock_a), name="bob")
    with pytest.raises(DeadlockError) as excinfo:
        env.run()
    message = str(excinfo.value)
    assert "alice" in message and "bob" in message
    assert "lock-a" in message and "lock-b" in message
    # The wait-for graph names the holder of each contended lock.
    assert "held by" in message
    # The exception carries the structured (process, event) pairs too.
    names = sorted(proc.name for proc, _ in excinfo.value.blocked)
    assert names == ["alice", "bob"]


def test_blocked_getter_on_empty_store_is_reported():
    env = Environment()
    store = Store(env, name="inbox")

    def consumer(env):
        yield store.get()

    env.process(consumer(env), name="consumer")
    with pytest.raises(DeadlockError) as excinfo:
        env.run()
    message = str(excinfo.value)
    assert "consumer" in message
    assert "Store 'inbox'.get" in message


def test_run_until_event_reports_deadlock_instead_of_generic_error():
    env = Environment()
    store = Store(env)

    def consumer(env):
        item = yield store.get()
        return item

    proc = env.process(consumer(env), name="consumer")
    with pytest.raises(DeadlockError):
        env.run(until=proc)


def test_deadlock_error_is_a_simulation_error():
    assert issubclass(DeadlockError, SimulationError)
    assert issubclass(WatchdogError, SimulationError)


def test_daemon_processes_do_not_trigger_deadlock():
    """Perpetual service loops (marked daemon) may outlive the workload."""
    env = Environment()
    store = Store(env)
    served = []

    def service(env):
        while True:
            served.append((yield store.get()))

    def client(env):
        yield store.put("job")
        yield env.timeout(5)

    env.process(service(env), name="service", daemon=True)
    env.process(client(env), name="client")
    env.run()  # must not raise: only the daemon is still blocked
    assert served == ["job"]


def test_clean_completion_does_not_raise():
    env = Environment()

    def worker(env):
        yield env.timeout(10)

    env.process(worker(env))
    env.run()
    assert env.now == 10


def test_run_until_time_does_not_deadlock_check():
    """Horizon runs routinely pause mid-wait; no deadlock check there."""
    env = Environment()
    store = Store(env)

    def consumer(env):
        yield store.get()

    env.process(consumer(env), name="consumer")
    env.run(until=100)  # queue drains, consumer blocked: fine
    store.put("late")
    env.run()  # consumer finishes; nothing blocked any more


# ----------------------------------------------------------------------
# Watchdog
# ----------------------------------------------------------------------
def test_watchdog_max_events_catches_livelock():
    env = Environment()

    def ping_pong(env):
        while True:
            yield env.timeout(1)

    env.process(ping_pong(env), name="spinner")
    env.watchdog(max_events=100)
    with pytest.raises(WatchdogError) as excinfo:
        env.run()
    assert "limit 100" in str(excinfo.value)
    assert "spinner" in str(excinfo.value)
    assert excinfo.value.limit == 100


def test_watchdog_max_time_ps():
    env = Environment()

    def slow(env):
        yield env.timeout(10_000)

    env.process(slow(env))
    env.watchdog(max_time_ps=1_000)
    with pytest.raises(WatchdogError) as excinfo:
        env.run()
    assert excinfo.value.limit == 1_000


def test_watchdog_disarm_and_generous_limits():
    env = Environment()

    def quick(env):
        yield env.timeout(5)

    env.process(quick(env))
    env.watchdog(max_events=1)
    env.watchdog()  # disarm again
    env.run()

    env2 = Environment()
    env2.process(quick(env2))
    env2.watchdog(max_events=1_000_000, max_time_ps=10**12)
    env2.run()  # generous limits never trip
    assert env2.now == 5


def test_watchdog_validates_limits():
    env = Environment()
    with pytest.raises(ValueError):
        env.watchdog(max_events=0)
    with pytest.raises(ValueError):
        env.watchdog(max_time_ps=-5)


def test_event_count_advances():
    env = Environment()

    def worker(env):
        yield env.timeout(1)
        yield env.timeout(1)

    env.process(worker(env))
    env.run()
    assert env.event_count > 0


# ----------------------------------------------------------------------
# Failure context
# ----------------------------------------------------------------------
def test_static_context_appears_in_deadlock_message():
    env = Environment()
    env.add_context(app="grep", config="active+pref")
    store = Store(env)

    def consumer(env):
        yield store.get()

    env.process(consumer(env), name="consumer")
    with pytest.raises(DeadlockError) as excinfo:
        env.run()
    message = str(excinfo.value)
    assert "app=grep" in message
    assert "config=active+pref" in message


def test_context_providers_sampled_at_failure_time():
    env = Environment()
    progress = {"done": 0}
    env.add_context_provider(lambda: {"progress": f"{progress['done']} blocks"})
    store = Store(env)

    def worker(env):
        yield env.timeout(10)
        progress["done"] = 7
        yield store.get()

    env.process(worker(env), name="worker")
    with pytest.raises(DeadlockError) as excinfo:
        env.run()
    # The provider was sampled when the failure was reported, not when
    # it was registered.
    assert "7 blocks" in str(excinfo.value)


def test_broken_context_provider_never_masks_the_failure():
    env = Environment()
    env.add_context_provider(lambda: 1 / 0)
    env.add_context(app="sort")
    store = Store(env)

    def consumer(env):
        yield store.get()

    env.process(consumer(env), name="consumer")
    with pytest.raises(DeadlockError) as excinfo:
        env.run()
    assert "app=sort" in str(excinfo.value)

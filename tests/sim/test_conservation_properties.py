"""Property tests: capacity/token conservation under cancel and interrupt.

The hardening pass added withdrawal semantics — ``Resource.cancel`` on
granted requests, ``Process.interrupt`` pulling waiters out of queues,
rollback of unconsumed same-timestep grants.  These tests let hypothesis
search random interleavings of those operations and assert the
invariants that must survive every one of them:

* Resource: after all workers finish or are interrupted, no unit is
  held and no zombie waiter is queued.
* Store: items put == items consumed + items still stored (nothing
  duplicated or lost by withdrawn getters).
* Container: tokens taken + level == init + tokens added, even when
  getters are interrupted mid-wait or right as their grant lands.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    Container,
    DeadlockError,
    Environment,
    Interrupt,
    Resource,
    Store,
)


@given(
    holds=st.lists(st.integers(min_value=1, max_value=50),
                   min_size=2, max_size=15),
    capacity=st.integers(min_value=1, max_value=3),
    interrupt_times=st.lists(st.integers(min_value=0, max_value=200),
                             min_size=0, max_size=8),
)
@settings(max_examples=50, deadline=None)
def test_property_resource_conserved_under_interrupts(
        holds, capacity, interrupt_times):
    """No held units and no queued waiters remain, however workers are
    interrupted — mid-wait, mid-hold, or racing a same-timestep grant."""
    env = Environment()
    resource = Resource(env, capacity=capacity)
    workers = []

    def worker(env, hold):
        try:
            with resource.request() as req:
                yield req
                yield env.timeout(hold)
        except Interrupt:
            pass
        # An interrupted worker may try again once, exercising
        # re-request after withdrawal.
        try:
            with resource.request() as req:
                yield req
                yield env.timeout(1)
        except Interrupt:
            pass

    for hold in holds:
        workers.append(env.process(worker(env, hold)))

    def saboteur(env):
        for when, target_index in zip(
                sorted(interrupt_times),
                range(len(interrupt_times))):
            delay = when - env.now
            if delay > 0:
                yield env.timeout(delay)
            target = workers[target_index % len(workers)]
            if target.is_alive:
                target.interrupt("chaos")
        yield env.timeout(0)

    env.process(saboteur(env))
    env.run()
    assert resource.count == 0
    assert len(resource.queue) == 0


@given(
    items=st.lists(st.integers(), min_size=1, max_size=30),
    capacity=st.integers(min_value=1, max_value=5),
    interrupt_after=st.integers(min_value=0, max_value=40),
)
@settings(max_examples=50, deadline=None)
def test_property_store_items_conserved_under_interrupt(
        items, capacity, interrupt_after):
    """puts_stored == consumed + still-in-store: an interrupted getter
    neither loses nor duplicates an item."""
    env = Environment()
    store = Store(env, capacity=capacity)
    consumed = []
    stored = [0]

    def producer(env):
        for item in items:
            yield store.put(item)
            stored[0] += 1
            yield env.timeout(1)

    def consumer(env):
        while True:
            try:
                consumed.append((yield store.get()))
                yield env.timeout(2)
            except Interrupt:
                continue  # dropped the wait, not an item: try again

    env.process(producer(env))
    victim = env.process(consumer(env), name="consumer", daemon=True)

    def saboteur(env):
        yield env.timeout(interrupt_after)
        if victim.is_alive:
            victim.interrupt()
        yield env.timeout(interrupt_after + 1)
        if victim.is_alive:
            victim.interrupt()

    env.process(saboteur(env))
    env.run()
    assert stored[0] == len(consumed) + len(store.items)
    # FIFO order is preserved across withdrawn waits.
    assert consumed == items[:len(consumed)]
    assert list(store.items) == items[len(consumed):]


@given(
    gets=st.lists(st.integers(min_value=1, max_value=8),
                  min_size=1, max_size=15),
    refill=st.integers(min_value=1, max_value=8),
    interrupt_at=st.integers(min_value=0, max_value=120),
)
@settings(max_examples=50, deadline=None)
def test_property_container_conserved_under_interrupt(
        gets, refill, interrupt_at):
    """taken + level == init + added, with one getter interrupted at a
    random time (possibly the same timestep its grant lands)."""
    env = Environment()
    initial = 8
    tank = Container(env, capacity=1000, init=initial)
    taken = [0]
    added = [0]
    getters = []

    def getter(env, amount):
        try:
            yield tank.get(amount)
            taken[0] += amount
        except Interrupt:
            pass  # withdrawn: tokens must NOT be debited

    def refiller(env):
        for _ in range(len(gets)):
            yield env.timeout(10)
            yield tank.put(refill)
            added[0] += refill

    for amount in gets:
        getters.append(env.process(getter(env, amount)))
    env.process(refiller(env))

    def saboteur(env):
        yield env.timeout(interrupt_at)
        target = getters[interrupt_at % len(getters)]
        if target.is_alive:
            target.interrupt()

    env.process(saboteur(env))
    try:
        env.run()
    except DeadlockError:
        pass  # some schedules legitimately starve a getter
    assert taken[0] + tank.level == initial + added[0]
    assert tank.level >= 0

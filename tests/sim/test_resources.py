"""Unit tests for Store, Resource, and Container."""

import pytest

from repro.sim import Container, Environment, Resource, SimulationError, Store


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
def test_store_put_then_get():
    env = Environment()
    store = Store(env)

    def producer(env):
        yield store.put("item")

    def consumer(env):
        item = yield store.get()
        return item

    env.process(producer(env))
    proc = env.process(consumer(env))
    assert env.run(until=proc) == "item"


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)

    def consumer(env):
        item = yield store.get()
        return (env.now, item)

    def producer(env):
        yield env.timeout(50)
        yield store.put("late")

    proc = env.process(consumer(env))
    env.process(producer(env))
    assert env.run(until=proc) == (50, "late")


def test_store_is_fifo():
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for i in range(4):
            yield store.put(i)

    def consumer(env):
        for _ in range(4):
            item = yield store.get()
            received.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == [0, 1, 2, 3]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    trace = []

    def producer(env):
        yield store.put("a")
        trace.append(("put-a", env.now))
        yield store.put("b")
        trace.append(("put-b", env.now))

    def consumer(env):
        yield env.timeout(100)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert trace == [("put-a", 0), ("put-b", 100)]


def test_store_rejects_nonpositive_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_store_len_counts_items():
    env = Environment()
    store = Store(env)

    def filler(env):
        yield store.put("x")
        yield store.put("y")

    env.process(filler(env))
    env.run()
    assert len(store) == 2


# ----------------------------------------------------------------------
# Resource
# ----------------------------------------------------------------------
def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    grants = []

    def user(env, name, hold):
        req = res.request()
        yield req
        grants.append((name, env.now))
        yield env.timeout(hold)
        res.release(req)

    env.process(user(env, "a", 10))
    env.process(user(env, "b", 10))
    env.process(user(env, "c", 10))
    env.run()
    assert grants == [("a", 0), ("b", 0), ("c", 10)]


def test_resource_fifo_ordering():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, name):
        req = res.request()
        yield req
        order.append(name)
        yield env.timeout(1)
        res.release(req)

    for name in "abcd":
        env.process(user(env, name))
    env.run()
    assert order == list("abcd")


def test_resource_release_unowned_raises():
    env = Environment()
    res = Resource(env)
    bogus = res.request()
    res.users.clear()  # simulate double release
    with pytest.raises(SimulationError):
        res.release(bogus)


def test_resource_cancel_removes_waiter():
    env = Environment()
    res = Resource(env, capacity=1)
    held = res.request()
    waiting = res.request()
    assert not waiting.triggered
    res.cancel(waiting)
    res.release(held.value if held.triggered else held)
    env.run()
    assert not waiting.triggered


def test_resource_capacity_validated():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_count_property():
    env = Environment()
    res = Resource(env, capacity=3)
    res.request()
    res.request()
    assert res.count == 2


# ----------------------------------------------------------------------
# Container
# ----------------------------------------------------------------------
def test_container_get_blocks_until_level():
    env = Environment()
    tank = Container(env, capacity=100, init=0)

    def filler(env):
        yield env.timeout(10)
        yield tank.put(60)

    def drainer(env):
        yield tank.get(50)
        return env.now

    env.process(filler(env))
    proc = env.process(drainer(env))
    assert env.run(until=proc) == 10
    assert tank.level == 10


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    times = []

    def putter(env):
        yield tank.put(5)
        times.append(env.now)

    def getter(env):
        yield env.timeout(30)
        yield tank.get(5)

    env.process(putter(env))
    env.process(getter(env))
    env.run()
    assert times == [30]


def test_container_fifo_prevents_starvation():
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    order = []

    def big(env):
        yield tank.get(50)
        order.append("big")

    def small(env):
        yield env.timeout(1)
        yield tank.get(1)
        order.append("small")

    def refill(env):
        for _ in range(6):
            yield env.timeout(10)
            yield tank.put(10)

    env.process(big(env))
    env.process(small(env))
    env.process(refill(env))
    env.run()
    assert order == ["big", "small"]


def test_container_validates_amounts():
    env = Environment()
    tank = Container(env, capacity=10, init=5)
    with pytest.raises(ValueError):
        tank.get(0)
    with pytest.raises(ValueError):
        tank.put(-1)
    with pytest.raises(ValueError):
        tank.get(11)


def test_container_init_bounds():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=11)
    with pytest.raises(ValueError):
        Container(env, capacity=0)

"""Unit tests for the (deprecated) legacy event tracer.

The class still works when explicitly wired in — these tests pin that —
but constructing one warns; tests/test_deprecations.py covers the
warning itself, so it is silenced here.
"""

import pytest

from repro.net import ActiveHeader, ChannelAdapter, Link, Message
from repro.sim import Environment, Tracer
from repro.switch import ActiveSwitch

pytestmark = pytest.mark.filterwarnings(
    "ignore:repro.sim.Tracer is deprecated:DeprecationWarning")


def test_record_and_select():
    tracer = Tracer()
    tracer.record(100, "dispatch", cpu=0)
    tracer.record(200, "dispatch", cpu=1)
    tracer.record(150, "arrival", block=3)
    assert tracer.count("dispatch") == 2
    assert tracer.count() == 3
    assert [r.get("cpu") for r in tracer.select("dispatch")] == [0, 1]


def test_disabled_tracer_is_noop():
    tracer = Tracer(enabled=False)
    tracer.record(1, "x")
    assert len(tracer) == 0


def test_capacity_drops_newest_and_counts():
    tracer = Tracer(capacity=2)
    for i in range(5):
        tracer.record(i, "k", i=i)
    assert len(tracer) == 2
    assert tracer.dropped == 3
    assert [r.get("i") for r in tracer.records] == [0, 1]


def test_capacity_validation():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_span():
    tracer = Tracer()
    tracer.record(100, "a")
    tracer.record(400, "a")
    tracer.record(900, "b")
    assert tracer.span_ps("a") == 300
    assert tracer.span_ps() == 800
    assert tracer.span_ps("b") == 0


def test_summary_counts_by_kind():
    tracer = Tracer()
    tracer.record(1, "a")
    tracer.record(2, "a")
    tracer.record(3, "b")
    assert tracer.summary() == {"a": 2, "b": 1, "dropped": 0}


def test_summary_reports_dropped_records():
    tracer = Tracer(capacity=2)
    for i in range(5):
        tracer.record(i, "k")
    assert tracer.summary() == {"k": 2, "dropped": 3}


def test_clear():
    tracer = Tracer()
    tracer.record(1, "a")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.dropped == 0


def test_record_details_roundtrip():
    tracer = Tracer()
    tracer.record(5, "x", alpha=1, beta="two")
    record = tracer.records[0]
    assert record.as_dict() == {"alpha": 1, "beta": "two"}
    assert record.get("alpha") == 1
    assert record.get("missing", 42) == 42


def test_active_switch_traces_dispatches():
    env = Environment()
    tracer = Tracer()
    switch = ActiveSwitch(env, "sw0", tracer=tracer)
    adapter = ChannelAdapter(env, "ep0")
    to_switch = Link(env, "ep0->sw0")
    from_switch = Link(env, "sw0->ep0")
    adapter.attach(tx_link=to_switch, rx_link=from_switch)
    switch.connect(0, tx_link=from_switch, rx_link=to_switch)
    switch.routing.add("ep0", 0)

    def handler(ctx):
        yield from ctx.compute(cycles=1)
        yield from ctx.deallocate(ctx.address + 512)

    switch.register_handler(1, handler)

    def sender(env):
        for i in range(3):
            yield from adapter.transmit(Message(
                "ep0", "sw0", size_bytes=64,
                active=ActiveHeader(handler_id=1, address=i * 512)))

    env.process(sender(env))
    env.run()
    dispatches = tracer.select("dispatch")
    assert len(dispatches) == 3
    assert all(r.get("handler_id") == 1 for r in dispatches)
    assert all(r.get("switch") == "sw0" for r in dispatches)


def test_switch_without_tracer_has_none():
    # The legacy global-tracer default is gone: an unwired switch holds
    # no tracer at all, and the guarded record sites stay silent.
    env = Environment()
    switch = ActiveSwitch(env, "sw0")
    assert switch.tracer is None

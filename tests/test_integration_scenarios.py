"""Cross-layer integration scenarios.

Each test assembles a nontrivial system from public APIs and checks an
end-to-end property that no single-layer test covers.
"""

import pytest

from repro.net import ActiveHeader, ChannelAdapter, Link, Message
from repro.sim import Environment
from repro.sim.units import us
from repro.switch import ActiveSwitch


def build_two_switch_fabric(env):
    """host -- sw0 -- sw1 -- sink, both switches active."""
    sw0 = ActiveSwitch(env, "sw0")
    sw1 = ActiveSwitch(env, "sw1")
    host = ChannelAdapter(env, "host")
    sink = ChannelAdapter(env, "sink")

    h_sw0 = Link(env, "host->sw0")
    sw0_h = Link(env, "sw0->host")
    host.attach(tx_link=h_sw0, rx_link=sw0_h)
    sw0.connect(0, tx_link=sw0_h, rx_link=h_sw0)

    sw0_sw1 = Link(env, "sw0->sw1")
    sw1_sw0 = Link(env, "sw1->sw0")
    sw0.connect(1, tx_link=sw0_sw1, rx_link=sw1_sw0)
    sw1.connect(0, tx_link=sw1_sw0, rx_link=sw0_sw1)

    sw1_sink = Link(env, "sw1->sink")
    sink_sw1 = Link(env, "sink->sw1")
    sw1.connect(1, tx_link=sw1_sink, rx_link=sink_sw1)
    sink.attach(tx_link=sink_sw1, rx_link=sw1_sink)

    sw0.routing.add("host", 0)
    sw0.routing.add("sw1", 1)
    sw0.routing.add("sink", 1)
    sw1.routing.add("sw0", 0)
    sw1.routing.add("host", 0)
    sw1.routing.add("sink", 1)
    return sw0, sw1, host, sink


def test_handler_cascade_across_switches():
    """A handler on sw0 forwards an active message that dispatches a
    second handler on sw1 — the multi-level pattern the reduction tree
    uses, verified in isolation."""
    env = Environment()
    sw0, sw1, host, sink = build_two_switch_fabric(env)

    def stage_one(ctx):
        yield from ctx.read(ctx.address, 256)
        yield from ctx.compute(cycles=100)
        doubled = [value * 2 for value in ctx.arg]
        yield from ctx.send("sw1", 256,
                            active=ActiveHeader(handler_id=2, address=0x0),
                            payload=doubled)
        yield from ctx.deallocate(ctx.address + 512)

    def stage_two(ctx):
        yield from ctx.read(ctx.address, 256)
        yield from ctx.compute(cycles=100)
        total = sum(ctx.arg)
        yield from ctx.send("sink", 16, payload=total)
        yield from ctx.deallocate(ctx.address + 512)

    sw0.register_handler(1, stage_one)
    sw1.register_handler(2, stage_two)

    def producer(env):
        yield from host.transmit(Message(
            "host", "sw0", size_bytes=256,
            active=ActiveHeader(handler_id=1, address=0x0),
            payload=list(range(10))))

    def consumer(env):
        return (yield sink.recv_queue.get())

    env.process(producer(env))
    done = env.process(consumer(env))
    message = env.run(until=done)
    assert message.payload == sum(2 * v for v in range(10))
    env.run()
    assert sw0.buffers.in_use == 0
    assert sw1.buffers.in_use == 0


def test_active_and_forwarded_traffic_coexist():
    """Handler work on sw0 does not reorder or corrupt pass-through
    traffic host -> sink crossing the same switch."""
    env = Environment()
    sw0, sw1, host, sink = build_two_switch_fabric(env)

    def churner(ctx):
        yield from ctx.compute(cycles=50_000)
        yield from ctx.deallocate(ctx.address + 512)

    sw0.register_handler(1, churner)
    received = []

    def producer(env):
        for i in range(10):
            yield from host.transmit(Message(
                "host", "sw0", size_bytes=64,
                active=ActiveHeader(handler_id=1, address=(i % 16) * 512)))
            yield from host.transmit(Message("host", "sink", 128,
                                             payload=i))

    def consumer(env):
        for _ in range(10):
            message = yield sink.recv_queue.get()
            received.append(message.payload)

    env.process(producer(env))
    done = env.process(consumer(env))
    env.run(until=done)
    assert received == list(range(10))


def test_mixed_block_and_packet_traffic_one_system():
    """The block-level I/O pipeline and packet-level active messages
    share one System without interfering."""
    from repro.cluster import ClusterConfig, ReadStream, System

    system = System(ClusterConfig(active=True, num_hosts=2))
    env = system.env
    host0, host1 = system.hosts
    pings = []

    def block_consumer(env):
        stream = ReadStream(system, host0, total_bytes=256 * 1024,
                            request_bytes=64 * 1024, depth=2,
                            to_switch=True, request_cost="active")
        for _ in range(4):
            arrival = yield from stream.next_block()
            yield from system.process_on_switch(
                cycles=1000, stall_ps=0,
                arrival_end_event=arrival.end_event)
            yield from stream.done_with(arrival)

    def pinger(env):
        for i in range(5):
            yield from host1.hca.send(host0.name, 64, payload=i)
            yield env.timeout(us(100))

    def pong(env):
        for _ in range(5):
            message = yield from host0.hca.poll_receive()
            pings.append(message.payload)

    block_proc = env.process(block_consumer(env))
    env.process(pinger(env))
    pong_proc = env.process(pong(env))
    env.run(until=env.all_of([block_proc, pong_proc]))
    assert pings == list(range(5))
    assert system.storage.disks.bytes_read == 256 * 1024

"""Collective reduction on a tree of active switches.

Beats the MST software lower bound ceil(log2 p)*(alpha+lambda): every
compute node fires its vector at its leaf switch as an active message;
leaf handlers combine eight vectors each and forward one partial up the
tree.  This is fully packet-level — real dispatch, data buffers, ATB,
send unit — and the arithmetic is real, checked against an oracle.

Run:  python examples/cluster_reduction.py [max_nodes]
"""

import sys

from repro.apps import DISTRIBUTED, REDUCE_TO_ONE, reduction_sweep


def main(max_nodes: int = 128):
    counts = [p for p in (2, 4, 8, 16, 32, 64, 128) if p <= max_nodes]
    for mode, paper_peak in ((REDUCE_TO_ONE, 5.61), (DISTRIBUTED, 5.92)):
        print(f"=== {mode} (paper peak speedup: {paper_peak}) ===")
        print(f"{'nodes':>6} {'normal (us)':>12} {'active (us)':>12} "
              f"{'speedup':>8}")
        rows = reduction_sweep(mode, node_counts=counts)
        for row in rows:
            print(f"{row['nodes']:>6} {row['normal_us']:>12.1f} "
                  f"{row['active_us']:>12.1f} {row['speedup']:>8.2f}")
        print()
    print("Active latency stays nearly flat (one switch-tree traversal)\n"
          "while the MST baseline pays host software overhead on every\n"
          "one of its ceil(log2 p) rounds.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 128)

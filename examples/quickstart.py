"""Quickstart: run a paper benchmark, then hand-wire a fabric.

Part 1 is the one-liner most users want — ``repro.run()`` executes a
registered benchmark under all four paper configurations (normal,
normal+pref, active, active+pref) and hands back a result with
figure-style reports.  Add ``parallel=4`` for a process pool or
``cache=".repro-cache"`` to make reruns instant; both are bit-identical
to the serial run.

Part 2 shows the core API at the lowest level: create an environment,
wire two endpoints to an :class:`ActiveSwitch`, register a handler in
the jump table, and fire an active message at the switch.  The handler
streams its input out of the on-chip data buffers (stalling on the
valid bits exactly like the paper's hardware), transforms it, and
replies to the other endpoint.

Run:  python examples/quickstart.py
"""

import repro
from repro.net import ActiveHeader, ChannelAdapter, Link, Message
from repro.sim import Environment, ps_to_us
from repro.switch import ActiveSwitch, ActiveSwitchConfig


def run_benchmark():
    result = repro.run("grep", scale=0.1)
    print(result.report().performance())
    print(f"active speedup over normal: {result.active_speedup:.2f}x")
    print()


def main():
    run_benchmark()
    env = Environment()
    switch = ActiveSwitch(env, "sw0",
                          active_config=ActiveSwitchConfig(num_cpus=1))

    # Wire two endpoints to switch ports 0 and 1.
    endpoints = []
    for port, name in enumerate(["sensor", "sink"]):
        to_switch = Link(env, f"{name}->sw0")
        from_switch = Link(env, f"sw0->{name}")
        adapter = ChannelAdapter(env, name)
        adapter.attach(tx_link=to_switch, rx_link=from_switch)
        switch.connect(port, tx_link=from_switch, rx_link=to_switch)
        switch.routing.add(name, port)
        endpoints.append(adapter)
    sensor, sink = endpoints

    # A handler: consume the streamed payload, compute, forward a
    # filtered summary to the sink, release the buffers.
    def summarize(ctx):
        yield from ctx.read(ctx.address, 512)        # stall on valid bits
        values = ctx.arg
        yield from ctx.compute(cycles=len(values) * 4)
        summary = {"count": len(values), "total": sum(values)}
        yield from ctx.send("sink", 64, payload=summary)
        yield from ctx.deallocate(ctx.address + 512)

    switch.register_handler(7, summarize)

    def producer(env):
        yield from sensor.transmit(Message(
            "sensor", "sw0", size_bytes=512,
            active=ActiveHeader(handler_id=7, address=0x1000),
            payload=list(range(128))))

    def consumer(env):
        message = yield sink.recv_queue.get()
        return message

    env.process(producer(env))
    done = env.process(consumer(env))
    message = env.run(until=done)

    print(f"summary delivered after {ps_to_us(env.now):.2f} us: "
          f"{message.payload}")
    print(f"switch CPU busy {ps_to_us(switch.cpus[0].accounting.busy_ps):.2f} us, "
          f"stalled-on-valid-bits "
          f"{ps_to_us(switch.cpus[0].accounting.stall_ps):.2f} us")
    print(f"data buffers in use after run: {switch.buffers.in_use} "
          f"(handler released everything)")
    assert message.payload["total"] == sum(range(128))


if __name__ == "__main__":
    main()

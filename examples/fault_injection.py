"""Fault injection: run a reduction over a lossy fabric and survive.

Builds the paper's switch-tree reduction twice — once on a perfect
fabric, once with every link dropping 10% and corrupting 5% of packets
plus a scripted handler crash on the root switch — and shows that:

* the numeric result matches the fault-free oracle bit for bit (the
  CRC + NACK/retransmission protocol and the crash containment hide
  every fault);
* recovery costs latency, which the reliability report itemizes;
* the same seed reproduces the same fault schedule exactly.

Run:  python examples/fault_injection.py [seed]
"""

import sys

from repro import FaultInjector, FaultPlan, LinkFaults
from repro.apps.reduction import (
    REDUCE_TO_ONE,
    REDUCTION_HCA,
    _make_vectors,
    _oracle,
    run_active_reduction,
)
from repro.cluster.topology import SwitchTree
from repro.sim import Environment, ps_to_us

NUM_HOSTS = 16

#: Every link drops 10% of copies and flips bits in another 5%.
LOSSY = FaultPlan(link=LinkFaults(drop_rate=0.10, bit_error_rate=0.05))


def run_point(plan, seed):
    env = Environment()
    injector = FaultInjector(plan, seed=seed) if plan is not None else None
    tree = SwitchTree(env, num_hosts=NUM_HOSTS, hosts_per_leaf=8,
                      switch_ports=16, hca_config=REDUCTION_HCA,
                      injector=injector)
    vectors = _make_vectors(NUM_HOSTS)
    result = run_active_reduction(tree, vectors, REDUCE_TO_ONE)
    assert result.result_vector == _oracle(vectors), "recovery failed!"
    return result, injector


def main():
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 11

    clean, _ = run_point(None, seed)
    faulty, injector = run_point(LOSSY, seed)
    again, injector2 = run_point(LOSSY, seed)

    print(f"{NUM_HOSTS}-host reduce-to-one, 512 B vectors")
    print(f"  perfect fabric : {ps_to_us(clean.latency_ps):8.2f} us")
    print(f"  lossy fabric   : {ps_to_us(faulty.latency_ps):8.2f} us "
          "(result byte-correct)")
    print("  faults injected and recovered:")
    for key, value in sorted(injector.snapshot().items()):
        print(f"    {key:28s} {value:g}")
    print(f"  schedule fingerprint: {injector.fingerprint()}")
    same = (again.latency_ps == faulty.latency_ps
            and injector2.fingerprint() == injector.fingerprint())
    print(f"  same seed ({seed}) reproduces the run: {same}")


if __name__ == "__main__":
    main()

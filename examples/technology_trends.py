"""Does the active switch still win as technology scales?

Sweeps the cluster presets — the paper's 2003 testbed, a plausible 2006
refresh, and single-technology jumps — and reruns Grep under each,
showing where the streaming offload keeps its edge and where faster
storage outruns the 500 MHz handler.

Run:  python examples/technology_trends.py [scale]
"""

import sys

import repro


def run_under_preset(name: str, scale: float):
    # preset= swaps the technology point while keeping the app's own
    # topology (host/storage counts, switch CPUs).
    return repro.run("grep", scale=scale, preset=name)


def main(scale: float = 0.5):
    print(f"{'preset':>16}  {'a vs n':>7}  {'a+p vs n+p':>10}  "
          f"{'host util (a+p)':>15}")
    for name in ("paper_2003", "balanced_2006", "fast_fabric",
                 "fast_storage", "fast_switch_cpu"):
        result = run_under_preset(name, scale)
        print(f"{name:>16}  {result.active_speedup:7.2f}  "
              f"{result.active_pref_speedup:10.2f}  "
              f"{result.utilization('active+pref'):15.1%}")
    print("\nReading: the offload holds through fabric and CPU scaling,\n"
          "but NVMe-class storage (fast_storage) outruns the 500 MHz\n"
          "handler — matching the ablate_storage_scaling crossover.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)

"""Does the active switch still win as technology scales?

Sweeps the cluster presets — the paper's 2003 testbed, a plausible 2006
refresh, and single-technology jumps — and reruns Grep under each,
showing where the streaming offload keeps its edge and where faster
storage outruns the 500 MHz handler.

Run:  python examples/technology_trends.py [scale]
"""

import sys
from dataclasses import replace

from repro.apps import GrepApp, run_four_cases
from repro.cluster.presets import PRESETS, get_preset


def run_under_preset(name: str, scale: float):
    def make():
        app = GrepApp(scale=scale)
        base = get_preset(name)
        original = app.cluster_config

        def patched(base=base, original=original):
            mine = original()
            return replace(base, num_switch_cpus=mine.num_switch_cpus)

        app.cluster_config = patched
        return app

    return run_four_cases(make)


def main(scale: float = 0.5):
    print(f"{'preset':>16}  {'a vs n':>7}  {'a+p vs n+p':>10}  "
          f"{'host util (a+p)':>15}")
    for name in ("paper_2003", "balanced_2006", "fast_fabric",
                 "fast_storage", "fast_switch_cpu"):
        result = run_under_preset(name, scale)
        print(f"{name:>16}  {result.active_speedup:7.2f}  "
              f"{result.active_pref_speedup:10.2f}  "
              f"{result.utilization('active+pref'):15.1%}")
    print("\nReading: the offload holds through fabric and CPU scaling,\n"
          "but NVMe-class storage (fast_storage) outruns the 500 MHz\n"
          "handler — matching the ablate_storage_scaling crossover.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)

"""Writing your own switch handler: a streaming word counter.

Demonstrates extending the library beyond the paper's nine benchmarks:
a handler that counts word boundaries in text streaming through the
switch and periodically reports running totals to the host — the
pattern to copy for any new filter/aggregate offload.

Run:  python examples/custom_handler.py
"""

from repro.net import ActiveHeader, ChannelAdapter, Link, Message
from repro.sim import Environment, ps_to_us
from repro.switch import ActiveSwitch


def build_fabric(env):
    switch = ActiveSwitch(env, "sw0")
    adapters = {}
    for port, name in enumerate(["source", "monitor"]):
        to_switch = Link(env, f"{name}->sw0")
        from_switch = Link(env, f"sw0->{name}")
        adapter = ChannelAdapter(env, name)
        adapter.attach(tx_link=to_switch, rx_link=from_switch)
        switch.connect(port, tx_link=from_switch, rx_link=to_switch)
        switch.routing.add(name, port)
        adapters[name] = adapter
    return switch, adapters


def main():
    env = Environment()
    switch, adapters = build_fabric(env)
    switch.kernel_state["words"] = 0

    text = (b"the active switch counts words as they stream through "
            b"its data buffers one line of valid bits at a time ") * 20

    def word_count_handler(ctx):
        """Count words in one message, report the running total."""
        size = ctx.message.size_bytes
        # Wait for the stream (valid-bit stalls) chunk by chunk.
        offset = 0
        while offset < size:
            chunk = min(512, size - offset)
            yield from ctx.read(ctx.address + offset, chunk)
            yield from ctx.compute(cycles=chunk * 2)  # scan for spaces
            offset += chunk
        # Release up to the end of the last (possibly partial) region —
        # Deallocate_Buffer frees whole buffers below the given address.
        yield from ctx.deallocate(ctx.address + ((size + 511) // 512) * 512)
        words = len(ctx.arg.split()) if ctx.arg else 0
        total = ctx.kernel_state("words") + words
        ctx.set_kernel_state("words", total)
        yield from ctx.send("monitor", 32, payload={"running_total": total})

    switch.register_handler(9, word_count_handler)

    def producer(env):
        # Stage successive messages at consecutive 512-byte regions:
        # the ATB is direct-mapped (16 x 512 B), so strides that alias
        # modulo 8 KB would conflict while earlier buffers are live.
        for i in range(4):
            chunk = text[i * len(text) // 4:(i + 1) * len(text) // 4]
            # Each ~525-byte message spans two MTU packets, hence two
            # consecutive 512-byte regions: stride by 1024.
            yield from adapters["source"].transmit(Message(
                "source", "sw0", size_bytes=len(chunk),
                active=ActiveHeader(handler_id=9, address=1024 * i),
                payload=chunk))

    reports = []

    def monitor(env):
        for _ in range(4):
            message = yield adapters["monitor"].recv_queue.get()
            reports.append((env.now, message.payload["running_total"]))

    env.process(producer(env))
    done = env.process(monitor(env))
    env.run(until=done)

    for when, total in reports:
        print(f"t={ps_to_us(when):8.2f} us  running word total: {total}")
    assert reports[-1][1] == len(text.split())
    print(f"\nfinal count {reports[-1][1]} matches the oracle; "
          f"buffers in use: {switch.buffers.in_use}")


if __name__ == "__main__":
    main()

"""Video filtering on an active switch (the paper's motivating workload).

Reproduces the MPEG-filter experiment: a video server streams an I/P
video off disk; the switch handler drops the P frames (header checking)
while the host color-reduces the surviving I frames — a two-stage
pipeline across the SAN.  Prints the paper's Figure 3/4 tables.

Run:  python examples/video_filter_pipeline.py [scale]
"""

import sys

import repro
from repro.apps import MpegFilterApp


def main(scale: float = 1.0):
    app = MpegFilterApp(scale=scale)
    print(f"input stream: {app.total_bytes} bytes, "
          f"{app.p_byte_fraction:.1%} P-frame bytes (filtered out)\n")

    result = repro.run("mpeg", scale=scale)
    report = result.report()
    print(report.performance())
    print()
    print(report.breakdown())
    print()
    print(f"active vs normal speedup:            {result.active_speedup:.2f} "
          f"(paper: 1.23)")
    print(f"active+pref vs normal+pref speedup:  "
          f"{result.active_pref_speedup:.2f} (paper: 1.36)")
    print(f"host traffic fraction:               "
          f"{result.normalized_traffic('active'):.3f} "
          f"(only I frames reach the host)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 1.0)

"""Database operator offload: Select and HashJoin on an active switch.

The database experiments show the *cache* side of the story: scanning a
table that streams through the host pollutes its caches; filtering
records inside the switch (from the on-chip data buffers, which by
design never miss) keeps the host's cache-stall time down and its
utilization free for other queries.

Run:  python examples/database_offload.py [scale]
"""

import sys

import repro


def main(scale: float = 1 / 32):
    print("=== Select: sequential range selection ===\n")
    select = repro.run("select", scale=scale)
    print(select.report().performance())
    normal_avg = (select.utilization("normal")
                  + select.utilization("normal+pref")) / 2
    active_avg = (select.utilization("active")
                  + select.utilization("active+pref")) / 2
    print(f"\nhost utilization, normal vs active: "
          f"{normal_avg / active_avg:.0f}x (paper: 21x)")
    print(f"host I/O traffic in active cases: "
          f"{select.normalized_traffic('active'):.2f} of normal "
          f"(paper: 0.25 — the selectivity)\n")

    print("=== HashJoin with a bit-vector filter in the switch ===\n")
    join = repro.run("hashjoin", scale=scale)
    print(join.report().performance())
    print()
    print(join.report().breakdown())
    npref = join.case("normal+pref").host.stall_frac
    apref = join.case("active+pref").host.stall_frac
    print(f"\nhost cache-stall share of execution: "
          f"{npref:.1%} (normal+pref) -> {apref:.1%} (active+pref) "
          f"(paper: 27.6% -> 16.1%)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 1 / 32)

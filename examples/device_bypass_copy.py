"""Device-to-device copy through an active switch (extension demo).

The paper's conclusion claims active switches improve "host-to-host,
host-to-device, and device-to-host communication".  This example
exercises the remaining corner — device-to-device: replicating a
dataset from one storage node to another (think backup or RAID
rebuild).

* **Host-mediated copy** (the conventional system): the host reads every
  block (full OS request cost, data lands in host memory), then writes
  it back out to the second storage node — 2x the bytes through the
  host's link and memory.
* **Switch-directed copy**: a tar-style handler pulls blocks from
  storage0 and redirects them straight to storage1; the host only posts
  the initial command.

Run:  python examples/device_bypass_copy.py [mbytes]
"""

import sys

from repro.cluster import ClusterConfig, ReadStream, System
from repro.sim.units import ps_to_ms


def host_mediated_copy(total_bytes: int, request_bytes: int = 256 * 1024):
    system = System(ClusterConfig(num_storage=2, prefetch_depth=2))
    env = system.env
    host = system.host
    src, dst = system.storage_nodes

    def copier(env):
        stream = ReadStream(system, host, total_bytes=total_bytes,
                            request_bytes=request_bytes, depth=2,
                            to_switch=False, request_cost="os",
                            storage_index=0)
        for index in range(stream.num_blocks):
            arrival = yield from stream.next_block()
            yield from stream.consume_fully(arrival)
            # Write request: OS cost again, then push to storage1.
            yield from host.os_request(arrival.nbytes)
            host.hca.account_bulk_out(arrival.nbytes)
            yield from dst.serve_write(arrival.offset, arrival.nbytes)
            yield from stream.done_with(arrival)

    proc = env.process(copier(env), name="host-copy")
    env.run(until=proc)
    return env.now, host


def switch_directed_copy(total_bytes: int, request_bytes: int = 256 * 1024):
    config = ClusterConfig(num_storage=2, prefetch_depth=2, active=True)
    system = System(config)
    env = system.env
    host = system.host
    src, dst = system.storage_nodes

    def copier(env):
        yield from host.active_request()  # one command to the handler
        stream = ReadStream(system, host, total_bytes=total_bytes,
                            request_bytes=request_bytes, depth=2,
                            to_switch=True, request_cost="none",
                            storage_index=0)
        for index in range(stream.num_blocks):
            arrival = yield from stream.next_block()
            # The handler only redirects buffers: trivial CPU cost.
            yield from system.process_on_switch(
                cycles=60, stall_ps=0, arrival_end_event=arrival.end_event)
            yield from dst.serve_write(arrival.offset, arrival.nbytes)
            yield from stream.done_with(arrival)

    proc = env.process(copier(env), name="switch-copy")
    env.run(until=proc)
    return env.now, host


def main(mbytes: int = 8):
    total = mbytes * 1024 * 1024
    host_time, host_node = host_mediated_copy(total)
    switch_time, switch_node = switch_directed_copy(total)

    print(f"copy {mbytes} MiB from storage0 to storage1\n")
    print(f"{'':24}{'time':>10}  {'host bytes':>12}  {'host busy':>10}")
    print(f"{'host-mediated copy':24}{ps_to_ms(host_time):8.1f} ms"
          f"  {host_node.hca.traffic.total_bytes:>12,}"
          f"  {ps_to_ms(host_node.cpu.accounting.busy_ps):8.1f} ms")
    print(f"{'switch-directed copy':24}{ps_to_ms(switch_time):8.1f} ms"
          f"  {switch_node.hca.traffic.total_bytes:>12,}"
          f"  {ps_to_ms(switch_node.cpu.accounting.busy_ps):8.1f} ms")
    print(f"\nspeedup {host_time / switch_time:.2f}x; host traffic "
          f"eliminated entirely; host CPU freed "
          f"({ps_to_ms(host_node.cpu.accounting.busy_ps):.1f} ms -> "
          f"{ps_to_ms(switch_node.cpu.accounting.busy_ps):.3f} ms)")
    assert switch_node.hca.traffic.total_bytes == 0
    assert switch_time <= host_time


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
